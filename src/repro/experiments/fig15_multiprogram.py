"""Figure 15: two-program system throughput (STP).

All (shared-friendly x private-friendly) pairs co-execute with each program
on half of every cluster (Figure 9's placement).  STP follows Eyerman &
Eeckhout: ``sum_i IPC_i(together) / IPC_i(alone)``, with the alone runs on
the full GPU under the shared LLC baseline.
"""

from __future__ import annotations

from repro.experiments.campaign import Campaign, RunSpec
from repro.experiments.runner import experiment_config, print_rows
from repro.metrics.perf import system_throughput
from repro.report.trends import Trend, value_at_least
from repro.workloads.multiprogram import all_shared_private_pairs

TITLE = "Figure 15 — multi-program STP (sorted), shared vs adaptive LLC"
SLUG = "fig15"
PAPER_CLAIM = ("Co-running a shared-friendly with a private-friendly "
               "program, the adaptive LLC raises system throughput over "
               "the all-shared baseline by serving each program's half of "
               "the clusters in its preferred organization.")
CHART = ("pair", ["shared_stp", "adaptive_stp"])


def expected_trends() -> list[Trend]:
    """The figure's paper-claimed trends, checked against ``run()`` rows."""
    return [
        Trend("adaptive_at_least_cost_neutral",
              "Per-program mode routing is at least cost-neutral on STP "
              "(paper: +8%; scaled traces sit inside the noise floor, so "
              "the floor is AVG gain >= 0.96)",
              value_at_least("gain", 0.96, "pair", "AVG")),
        Trend("stp_stays_healthy",
              "Average adaptive STP stays in a healthy band (>= 0.8 of "
              "two ideal programs)",
              value_at_least("adaptive_stp", 0.8, "pair", "AVG")),
    ]


def specs(scale: float = 1.0,
          pairs: list[tuple[str, str]] | None = None) -> list[RunSpec]:
    cfg = experiment_config()
    pairs = pairs or all_shared_private_pairs()
    out = [RunSpec.single(abbr, "shared", cfg, scale=scale, max_kernels=1)
           for abbr in sorted({a for p in pairs for a in p})]
    # Declared per-program through the Scenario API: both programs run the
    # same policy, which canonicalizes to the historical one-policy spec —
    # same cache keys, so pre-Scenario figure campaigns still dedupe.
    out += [RunSpec.pair(a, b, mode, cfg, scale=scale, mode_b=mode)
            for a, b in pairs for mode in ("shared", "adaptive")]
    return out


def run(scale: float = 1.0, pairs: list[tuple[str, str]] | None = None,
        campaign: Campaign | None = None) -> list[dict]:
    cfg = experiment_config()
    pairs = pairs or all_shared_private_pairs()
    campaign = campaign or Campaign()
    campaign.prefetch(specs(scale, pairs))
    alone: dict[str, float] = {}
    for abbr in {a for p in pairs for a in p}:
        alone[abbr] = campaign.result(
            RunSpec.single(abbr, "shared", cfg, scale=scale,
                           max_kernels=1)).ipc
    rows = []
    for a, b in pairs:
        row = {"pair": f"{a}+{b}"}
        for mode in ("shared", "adaptive"):
            res = campaign.result(RunSpec.pair(a, b, mode, cfg, scale=scale))
            ipcs = {p.name: p.ipc for p in res.programs}
            row[f"{mode}_stp"] = system_throughput(
                [ipcs[a], ipcs[b]], [alone[a], alone[b]])
        row["gain"] = row["adaptive_stp"] / row["shared_stp"]
        rows.append(row)
    rows.sort(key=lambda r: r["shared_stp"])
    n = len(rows)
    rows.append({
        "pair": "AVG",
        "shared_stp": sum(r["shared_stp"] for r in rows) / n,
        "adaptive_stp": sum(r["adaptive_stp"] for r in rows) / n,
        "gain": sum(r["gain"] for r in rows) / n,
    })
    return rows


def main(scale: float = 1.0, pairs=None,
         campaign: Campaign | None = None) -> list[dict]:
    rows = run(scale, pairs, campaign=campaign)
    print(TITLE)
    print_rows(rows)
    return rows


if __name__ == "__main__":
    main()
