"""Tables 1 and 2, plus row-table render backends for the report.

:func:`table1_rows` / :func:`table2_rows` reproduce the paper's tables as
row dicts; :func:`rows_to_markdown` / :func:`rows_to_html` turn any
driver's row dicts into Markdown / HTML tables (the report subsystem's
"raw data" blocks use them for every figure page).
"""

from __future__ import annotations

import html as _html

from repro.config import GPUConfig
from repro.experiments.runner import print_rows
from repro.workloads.catalog import BENCHMARKS, CATEGORIES


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return "" if value is None else str(value)


def rows_to_markdown(rows: list[dict],
                     columns: list[str] | None = None) -> str:
    """Render row dicts as a GitHub-flavored Markdown table.

    Args:
        rows: list of row dicts (floats are formatted to three decimals).
        columns: column order; defaults to the first row's key order.

    Returns:
        The table as a string, or ``"(no rows)"`` for an empty list.
    """
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    lines = ["| " + " | ".join(columns) + " |",
             "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_cell(row.get(c)) for c in columns)
                     + " |")
    return "\n".join(lines)


def rows_to_html(rows: list[dict],
                 columns: list[str] | None = None) -> str:
    """Render row dicts as an HTML ``<table>`` (values are escaped).

    Args:
        rows: list of row dicts (floats are formatted to three decimals).
        columns: column order; defaults to the first row's key order.

    Returns:
        The table markup, or a placeholder paragraph for an empty list.
    """
    if not rows:
        return "<p>(no rows)</p>"
    columns = columns or list(rows[0].keys())
    head = "".join(f"<th>{_html.escape(c)}</th>" for c in columns)
    body = []
    for row in rows:
        cells = "".join(f"<td>{_html.escape(_cell(row.get(c)))}</td>"
                        for c in columns)
        body.append(f"<tr>{cells}</tr>")
    return (f"<table><thead><tr>{head}</tr></thead>"
            f"<tbody>{''.join(body)}</tbody></table>")

_CLASS_LABEL = {"shared": "shared", "private": "private", "neutral": "neutral"}


def table1_rows(cfg: GPUConfig | None = None) -> list[dict]:
    """Table 1 — baseline GPU architecture."""
    cfg = cfg or GPUConfig.baseline()
    t = cfg.dram_timing
    return [
        {"parameter": "Streaming Multiprocessors",
         "value": f"{cfg.num_sms} SMs, {cfg.clock_mhz} MHz"},
        {"parameter": "Warp Size", "value": str(cfg.warp_size)},
        {"parameter": "Schedulers/Core", "value": str(cfg.schedulers_per_sm)},
        {"parameter": "Number of Threads/Core", "value": str(cfg.threads_per_sm)},
        {"parameter": "Registers/Core", "value": str(cfg.registers_per_sm)},
        {"parameter": "Shared Memory/Core",
         "value": f"{cfg.shared_mem_per_sm_kb} KB"},
        {"parameter": "L1 Data Cache/Core",
         "value": (f"{cfg.l1_size_kb} KB, {cfg.l1_assoc}-way, LRU, "
                   f"{cfg.line_bytes} B line")},
        {"parameter": "Memory Controllers",
         "value": str(cfg.num_memory_controllers)},
        {"parameter": "LLC slices/MC",
         "value": (f"{cfg.llc_slices_per_mc} x {cfg.llc_slice_kb} KB, "
                   f"{cfg.llc_assoc}-way, LRU")},
        {"parameter": "LLC",
         "value": (f"{cfg.llc_total_kb // 1024} MB, "
                   f"{cfg.llc_latency_cycles} cycles access time")},
        {"parameter": "Interconnection Network",
         "value": (f"{cfg.noc.topology}, {cfg.noc.channel_bytes} B channel, "
                   f"{cfg.noc.router_pipeline_stages}-stage router")},
        {"parameter": "DRAM Bandwidth",
         "value": (f"FR-FCFS, {cfg.dram_banks_per_mc} banks/MC, "
                   f"{cfg.dram_bandwidth_gbps:.0f} GB/s")},
        {"parameter": "GDDR5 Timing",
         "value": (f"tCL={t.tCL} tRP={t.tRP} tRC={t.tRC} tRAS={t.tRAS} "
                   f"tRCD={t.tRCD} tRRD={t.tRRD} tCCD={t.tCCD} tWR={t.tWR}")},
    ]


def table2_rows() -> list[dict]:
    """Table 2 — the 17-benchmark suite with footprints and classes."""
    rows = []
    for category, abbrs in CATEGORIES.items():
        for abbr in abbrs:
            spec = BENCHMARKS[abbr]
            rows.append({
                "benchmark": spec.name,
                "abbr": abbr,
                "shared_mb": spec.shared_mb,
                "kernels": spec.num_kernels,
                "llc_class": _CLASS_LABEL[category],
            })
    return rows


def main() -> None:
    print("Table 1 — baseline GPU architecture")
    print_rows(table1_rows())
    print()
    print("Table 2 — GPU benchmarks")
    print_rows(table2_rows())


if __name__ == "__main__":
    main()
