"""Figure 2: normalized performance of a private vs shared LLC, per
benchmark category, with the paper's harmonic-mean (HM) summary bars."""

from __future__ import annotations

from repro.experiments.campaign import Campaign, RunSpec
from repro.experiments.runner import experiment_config, print_rows
from repro.report.trends import Trend
from repro.sim.stats import harmonic_mean
from repro.workloads.catalog import CATEGORIES

TITLE = "Figure 2 — normalized performance, private LLC vs shared LLC"
SLUG = "fig02"
PAPER_CLAIM = ("Private-cache-friendly workloads speed up under a private "
               "LLC while shared-cache-friendly (high inter-cluster "
               "locality) workloads slow down — neither static "
               "organization wins everywhere.")
#: (label_key, value_keys) for the rendered chart.
CHART = ("benchmark", ["private_norm"])


def _category_hm(rows: list[dict], category: str) -> dict:
    for row in rows:
        if row["benchmark"] == "HM" and row["category"] == category:
            return row
    raise KeyError(f"no HM row for category {category!r}")


def expected_trends() -> list[Trend]:
    """The figure's paper-claimed trends, checked against ``run()`` rows."""

    def private_wins(rows):
        hm = _category_hm(rows, "private")["private_norm"]
        return hm >= 1.0, f"HM(private category) = {hm:.3f} (want >= 1)"

    def shared_wins(rows):
        hm = _category_hm(rows, "shared")["private_norm"]
        return hm <= 1.0, f"HM(shared category) = {hm:.3f} (want <= 1)"

    return [
        Trend("private_friendly_speedup",
              "Private LLC speeds up the private-cache-friendly category "
              "(HM normalized IPC >= 1)", private_wins),
        Trend("shared_friendly_slowdown",
              "Private LLC slows down the shared-cache-friendly category "
              "(HM normalized IPC <= 1)", shared_wins),
    ]


def specs(scale: float = 1.0,
          categories: list[str] | None = None) -> list[RunSpec]:
    """Every simulation this figure needs, declared up front."""
    cfg = experiment_config()
    return [RunSpec.single(abbr, mode, cfg, scale=scale)
            for category in (categories or list(CATEGORIES))
            for abbr in CATEGORIES[category]
            for mode in ("shared", "private")]


def run(scale: float = 1.0, categories: list[str] | None = None,
        campaign: Campaign | None = None) -> list[dict]:
    """Rows: benchmark, category, shared/private IPC, normalized private."""
    campaign = campaign or Campaign()
    campaign.prefetch(specs(scale, categories))
    cfg = experiment_config()
    rows = []
    for category in categories or list(CATEGORIES):
        speedups = []
        for abbr in CATEGORIES[category]:
            shared = campaign.result(
                RunSpec.single(abbr, "shared", cfg, scale=scale))
            private = campaign.result(
                RunSpec.single(abbr, "private", cfg, scale=scale))
            norm = private.ipc / shared.ipc
            speedups.append(norm)
            rows.append({
                "benchmark": abbr,
                "category": category,
                "shared_ipc": shared.ipc,
                "private_ipc": private.ipc,
                "private_norm": norm,
            })
        rows.append({
            "benchmark": "HM",
            "category": category,
            "shared_ipc": float("nan"),
            "private_ipc": float("nan"),
            "private_norm": harmonic_mean(speedups),
        })
    return rows


def main(scale: float = 1.0, campaign: Campaign | None = None) -> list[dict]:
    rows = run(scale, campaign=campaign)
    print(TITLE)
    print_rows(rows)
    return rows


if __name__ == "__main__":
    main()
