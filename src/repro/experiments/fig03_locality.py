"""Figure 3: inter-cluster locality under the shared LLC — the fraction of
LLC lines touched by 1 / 2 / 3-4 / 5-8 clusters per 1000-cycle window."""

from __future__ import annotations

from repro.experiments.campaign import Campaign, RunSpec
from repro.experiments.runner import experiment_config, print_rows
from repro.workloads.catalog import CATEGORIES

BUCKETS = ["1 cluster", "2 clusters", "3-4 clusters", "5-8 clusters"]


def specs(scale: float = 1.0,
          categories: list[str] | None = None) -> list[RunSpec]:
    cfg = experiment_config()
    return [RunSpec.single(abbr, "shared", cfg, scale=scale,
                           collect_locality=True)
            for category in (categories or list(CATEGORIES))
            for abbr in CATEGORIES[category]]


def run(scale: float = 1.0, categories: list[str] | None = None,
        campaign: Campaign | None = None) -> list[dict]:
    campaign = campaign or Campaign()
    campaign.prefetch(specs(scale, categories))
    cfg = experiment_config()
    rows = []
    for category in categories or list(CATEGORIES):
        sums = [0.0] * 4
        count = 0
        for abbr in CATEGORIES[category]:
            res = campaign.result(
                RunSpec.single(abbr, "shared", cfg, scale=scale,
                               collect_locality=True))
            fr = res.locality_fractions or [0.0] * 4
            row = {"benchmark": abbr, "category": category}
            row.update({b: f for b, f in zip(BUCKETS, fr)})
            rows.append(row)
            sums = [s + f for s, f in zip(sums, fr)]
            count += 1
        avg = {"benchmark": "AVG", "category": category}
        avg.update({b: s / max(count, 1) for b, s in zip(BUCKETS, sums)})
        rows.append(avg)
    return rows


def main(scale: float = 1.0, campaign: Campaign | None = None) -> list[dict]:
    rows = run(scale, campaign=campaign)
    print("Figure 3 — inter-cluster locality (shared LLC, 1000-cycle windows)")
    print_rows(rows)
    return rows


if __name__ == "__main__":
    main()
