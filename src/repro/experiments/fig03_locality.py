"""Figure 3: inter-cluster locality under the shared LLC — the fraction of
LLC lines touched by 1 / 2 / 3-4 / 5-8 clusters per 1000-cycle window."""

from __future__ import annotations

from repro.experiments.campaign import Campaign, RunSpec
from repro.experiments.runner import experiment_config, print_rows
from repro.report.trends import Trend
from repro.workloads.catalog import CATEGORIES

BUCKETS = ["1 cluster", "2 clusters", "3-4 clusters", "5-8 clusters"]

TITLE = "Figure 3 — inter-cluster locality (shared LLC, 1000-cycle windows)"
SLUG = "fig03"
PAPER_CLAIM = ("Private-cache-friendly workloads show high inter-cluster "
               "sharing (many clusters re-read the same lines, so "
               "replicating them locally pays off), shared-friendly "
               "workloads moderate sharing, and neutral streaming "
               "workloads almost none.")
CHART = ("benchmark", BUCKETS)


def _category_avg(rows: list[dict], category: str) -> dict:
    for row in rows:
        if row["benchmark"] == "AVG" and row["category"] == category:
            return row
    raise KeyError(f"no AVG row for category {category!r}")


def expected_trends() -> list[Trend]:
    """The figure's paper-claimed trends, checked against ``run()`` rows."""

    def fractions_sum(rows):
        for row in rows:
            total = sum(row[b] for b in BUCKETS)
            if total and abs(total - 1.0) > 1e-6:
                return False, (f"{row['benchmark']}: bucket fractions sum "
                               f"to {total:.4f}")
        return True, "every benchmark's bucket fractions sum to 1"

    def sharing_order(rows):
        multi = {c: 1.0 - _category_avg(rows, c)[BUCKETS[0]]
                 for c in ("private", "shared", "neutral")}
        ok = multi["neutral"] <= multi["shared"] <= multi["private"]
        return ok, ("multi-cluster fraction: neutral "
                    f"{multi['neutral']:.3f} <= shared "
                    f"{multi['shared']:.3f} <= private "
                    f"{multi['private']:.3f}?")

    return [
        Trend("fractions_well_formed",
              "Locality bucket fractions partition the touched lines "
              "(sum to 1 per benchmark)", fractions_sum),
        Trend("sharing_orders_categories",
              "Multi-cluster sharing orders the categories: private- "
              "friendly > shared-friendly > neutral", sharing_order),
    ]


def specs(scale: float = 1.0,
          categories: list[str] | None = None) -> list[RunSpec]:
    cfg = experiment_config()
    return [RunSpec.single(abbr, "shared", cfg, scale=scale,
                           collect_locality=True)
            for category in (categories or list(CATEGORIES))
            for abbr in CATEGORIES[category]]


def run(scale: float = 1.0, categories: list[str] | None = None,
        campaign: Campaign | None = None) -> list[dict]:
    campaign = campaign or Campaign()
    campaign.prefetch(specs(scale, categories))
    cfg = experiment_config()
    rows = []
    for category in categories or list(CATEGORIES):
        sums = [0.0] * 4
        count = 0
        for abbr in CATEGORIES[category]:
            res = campaign.result(
                RunSpec.single(abbr, "shared", cfg, scale=scale,
                               collect_locality=True))
            fr = res.locality_fractions or [0.0] * 4
            row = {"benchmark": abbr, "category": category}
            row.update({b: f for b, f in zip(BUCKETS, fr)})
            rows.append(row)
            sums = [s + f for s, f in zip(sums, fr)]
            count += 1
        avg = {"benchmark": "AVG", "category": category}
        avg.update({b: s / max(count, 1) for b, s in zip(BUCKETS, sums)})
        rows.append(avg)
    return rows


def main(scale: float = 1.0, campaign: Campaign | None = None) -> list[dict]:
    rows = run(scale, campaign=campaign)
    print(TITLE)
    print_rows(rows)
    return rows


if __name__ == "__main__":
    main()
