"""Figure 3: inter-cluster locality under the shared LLC — the fraction of
LLC lines touched by 1 / 2 / 3-4 / 5-8 clusters per 1000-cycle window."""

from __future__ import annotations

from repro.experiments.runner import experiment_config, print_rows, run_benchmark
from repro.workloads.catalog import CATEGORIES

BUCKETS = ["1 cluster", "2 clusters", "3-4 clusters", "5-8 clusters"]


def run(scale: float = 1.0, categories: list[str] | None = None) -> list[dict]:
    cfg = experiment_config()
    rows = []
    for category in categories or list(CATEGORIES):
        sums = [0.0] * 4
        count = 0
        for abbr in CATEGORIES[category]:
            res = run_benchmark(abbr, "shared", cfg, scale=scale,
                                collect_locality=True)
            fr = res.locality_fractions or [0.0] * 4
            row = {"benchmark": abbr, "category": category}
            row.update({b: f for b, f in zip(BUCKETS, fr)})
            rows.append(row)
            sums = [s + f for s, f in zip(sums, fr)]
            count += 1
        avg = {"benchmark": "AVG", "category": category}
        avg.update({b: s / max(count, 1) for b, s in zip(BUCKETS, sums)})
        rows.append(avg)
    return rows


def main(scale: float = 1.0) -> list[dict]:
    rows = run(scale)
    print("Figure 3 — inter-cluster locality (shared LLC, 1000-cycle windows)")
    print_rows(rows)
    return rows


if __name__ == "__main__":
    main()
