"""Consolidation: N-tenant mixes under open-system arrivals.

Not a paper figure — the experiment the consolidation subsystem exists
for.  The paper evaluates two-program closed-system mixes (Figure 15);
datacenter GPUs consolidate *more* tenants that *arrive over time*.  This
driver sweeps offered load (arrival process) x LLC policy over a seeded
three-tenant mix sampled from the catalog categories, and reports the
serving-system view the paper's throughput tables omit: per-tenant tail
latency, weighted speedup against cached solo baselines, and Jain's
fairness over per-tenant speedups.

Grid: arrival level (``closed`` / ``heavy`` / ``light`` Poisson loads) x
LLC policy (shared / private / adaptive).  Solo baselines are plain
single-benchmark specs, so they deduplicate against every other figure's
campaign cache.
"""

from __future__ import annotations

from repro.consolidate.metrics import jains_fairness
from repro.consolidate.mixgen import sample_mix
from repro.experiments.campaign import Campaign, RunSpec, spec_from_mix
from repro.experiments.runner import experiment_config, print_rows
from repro.metrics.perf import system_throughput
from repro.report.trends import Trend, value_at_least

TITLE = "Consolidation — N-tenant mixes under open-system arrivals"
SLUG = "consolidation"
PAPER_CLAIM = ("Consolidating more than two tenants behind the memory-side "
               "LLC should keep per-tenant service fair (no tenant starved "
               "by the shared organization) while the adaptive policy "
               "tracks the better static choice, even when tenants arrive "
               "mid-run instead of all at time zero.")

#: Tenant count and the seed that samples the mix from the catalog
#: categories (one shared-friendly, one private-friendly, one neutral —
#: :func:`~repro.consolidate.mixgen.sample_mix` round-robins categories).
N_TENANTS = 3
MIX_SEED = 7

#: Arrival levels: label -> arrivals spec (None = closed system).
LOADS = [
    ("closed", None),
    ("heavy", "poisson:gap=1000"),
    ("light", "poisson:gap=4000"),
]

#: Uniform policy columns (legacy spellings: dedupe with other figures).
POLICIES = ["shared", "private", "adaptive"]

CHART = ("cell", ["weighted_speedup", "fairness"])


def _tenant_abbrs() -> list[str]:
    return sample_mix(N_TENANTS, seed=MIX_SEED)


def _mix_spec(policy: str, arrivals: str | None, cfg,
              scale: float) -> RunSpec:
    mix = [(abbr, None) for abbr in _tenant_abbrs()]
    return spec_from_mix(mix, scale=scale, default_policy=policy, cfg=cfg,
                         max_kernels=1, arrivals=arrivals, seed=MIX_SEED)


def _solo_spec(abbr: str, cfg, scale: float) -> RunSpec:
    return RunSpec.single(abbr, "shared", cfg, scale=scale, max_kernels=1)


def expected_trends() -> list[Trend]:
    def no_tenant_starved(rows):
        """Every tenant keeps a usable share of its solo throughput in
        every cell; the floor is loose because a three-way split of the
        LLC legitimately costs each tenant most of its solo rate."""
        worst, where = None, ""
        for row in rows:
            if row["cell"] == "AVG":
                continue
            if worst is None or row["min_speedup"] < worst:
                worst, where = row["min_speedup"], row["cell"]
        if worst is None:
            return False, "no grid rows"
        return (worst >= 0.05,
                f"min per-tenant speedup = {worst:.3f} @ {where} "
                f"(want >= 0.05)")

    return [
        Trend("fairness_holds",
              "Jain's fairness over per-tenant speedups stays in a "
              "healthy band across loads and policies",
              value_at_least("fairness", 0.5, "cell", "AVG")),
        Trend("consolidation_pays",
              "Three consolidated tenants outperform serializing them "
              "(average weighted speedup above one program-equivalent)",
              value_at_least("weighted_speedup", 0.8, "cell", "AVG")),
        Trend("no_tenant_starved",
              "No tenant is starved outright in any load/policy cell",
              no_tenant_starved),
    ]


def specs(scale: float = 1.0) -> list[RunSpec]:
    cfg = experiment_config()
    out = [_solo_spec(abbr, cfg, scale) for abbr in _tenant_abbrs()]
    out += [_mix_spec(policy, arrivals, cfg, scale)
            for _label, arrivals in LOADS for policy in POLICIES]
    return out


def run(scale: float = 1.0, campaign: Campaign | None = None) -> list[dict]:
    cfg = experiment_config()
    campaign = campaign or Campaign()
    campaign.prefetch(specs(scale))
    abbrs = _tenant_abbrs()
    alone = {abbr: campaign.result(_solo_spec(abbr, cfg, scale)).ipc
             for abbr in abbrs}
    rows = []
    for load, arrivals in LOADS:
        for policy in POLICIES:
            res = campaign.result(_mix_spec(policy, arrivals, cfg, scale))
            ipcs = [p.ipc for p in res.programs]
            solos = [alone[abbr] for abbr in abbrs]
            speedups = [ipc / solo for ipc, solo in zip(ipcs, solos)]
            p99s = [p.latency["p99"] for p in res.programs]
            rows.append({
                "cell": f"{load}/{policy}",
                "load": load,
                "policy": policy,
                "weighted_speedup": system_throughput(ipcs, solos),
                "fairness": jains_fairness(speedups),
                "min_speedup": min(speedups),
                "mean_p99": sum(p99s) / len(p99s),
                "worst_p99": max(p99s),
            })
    n = len(rows)
    avg = {"cell": "AVG", "load": "all", "policy": "all"}
    for key in ("weighted_speedup", "fairness", "min_speedup", "mean_p99",
                "worst_p99"):
        avg[key] = sum(r[key] for r in rows) / n
    rows.append(avg)
    return rows


def main(scale: float = 1.0, campaign: Campaign | None = None) -> list[dict]:
    rows = run(scale, campaign=campaign)
    print(TITLE)
    print_rows(rows)
    return rows


if __name__ == "__main__":
    main()
