"""Shared experiment infrastructure.

:func:`run_benchmark` / :func:`run_pair` build the simulated GPU from
Table 1 defaults plus overrides, size traces per category, attach the
scaled adaptive-controller parameters, and (optionally) an energy report.

These are the *execution primitives*.  Figure drivers no longer call them
directly: they declare :class:`~repro.experiments.campaign.RunSpec` batches
and read results from a :class:`~repro.experiments.campaign.Campaign`,
which deduplicates identical runs, caches finished results on disk, and
fans cache misses out over a worker pool.
"""

from __future__ import annotations

from typing import Optional

from repro.config import AdaptiveConfig, GPUConfig
from repro.gpu.system import GPUSystem, RunResult
from repro.power.gpu_power import GPUPowerModel
from repro.workloads.catalog import benchmark
from repro.workloads.generator import generate_workload
from repro.workloads.multiprogram import make_pair

#: Trace budget per benchmark category (accesses at scale=1.0).  Private-
#: friendly workloads reach contention steady state quickly; neutral
#: streaming needs enough distinct lines to cycle the 6 MB LLC.
DEFAULT_ACCESSES = {
    "shared": 80_000,
    "private": 100_000,
    "neutral": 150_000,
}


def scaled_adaptive_config() -> AdaptiveConfig:
    """Adaptive-controller parameters for scaled traces.

    The paper profiles 50 K cycles per 1 M-cycle epoch on billion-
    instruction runs; scaled runs keep a comparable profile share but need
    denser ATD sampling (all 48 sets of the shadow slice) and a slightly
    wider Rule-1 margin to offset small-sample noise.
    """
    return AdaptiveConfig(
        epoch_cycles=150_000,
        profile_cycles=800,
        profile_warmup_cycles=500,
        atd_sampled_sets=48,
        miss_rate_margin=0.05,
    )


def experiment_config(**overrides) -> GPUConfig:
    """Table 1 baseline + scaled adaptive parameters + overrides."""
    cfg = GPUConfig.baseline().replace(adaptive=scaled_adaptive_config())
    if overrides:
        cfg = cfg.replace(**overrides)
    return cfg


#: Scale at which the interval policies' default windows are calibrated
#: (``medium``); below it, windows must shrink with the trace or the
#: policies never see enough full windows to act.
INTERVAL_REFERENCE_SCALE = 0.25

#: Registered policies whose window parameters scale with the trace.
_INTERVAL_POLICIES = ("miss-rate-threshold", "hysteresis", "bandit")


def scaled_policy_params(policy: str, scale: float,
                         params: Optional[dict] = None) -> dict:
    """Derive interval-policy window parameters from the trace scale.

    The dynamic heuristics' defaults (``interval=1500``,
    ``min_samples=128``) are tuned for scales >= 0.25; a ``smoke`` run is
    a few thousand cycles long, so at default settings the controllers
    silently stay static — the same problem
    :func:`scaled_adaptive_config` solves for the paper controller.  This
    shrinks ``interval`` and ``min_samples`` proportionally (with floors)
    for the interval-window policies; explicitly supplied parameters
    always win, and non-interval policies pass through untouched.
    """
    from repro.policy import canonical_policy_name, policy_class

    out = dict(params or {})
    name = canonical_policy_name(policy)
    if name not in _INTERVAL_POLICIES or scale >= INTERVAL_REFERENCE_SCALE:
        return out
    factor = scale / INTERVAL_REFERENCE_SCALE
    schema = policy_class(name).param_schema()
    out.setdefault("interval",
                   max(200, round(schema["interval"].default * factor)))
    out.setdefault("min_samples",
                   max(16, round(schema["min_samples"].default * factor)))
    return out


def _accesses_for(abbr: str, scale: float) -> int:
    spec = benchmark(abbr)
    return max(2_000, int(DEFAULT_ACCESSES[spec.category] * scale))


def run_benchmark(abbr: str, mode: str, cfg: Optional[GPUConfig] = None,
                  scale: float = 1.0, num_ctas: Optional[int] = None,
                  max_kernels: int = 3, collect_locality: bool = False,
                  with_energy: bool = False,
                  policy_params: Optional[dict] = None) -> RunResult:
    """Run one catalog benchmark under one LLC policy.

    ``mode`` is any name registered in :mod:`repro.policy` (the historical
    triad included); ``policy_params`` are that policy's parameter
    overrides.

    Kernel boundaries matter: they re-synchronize the CTA convoys that
    create the shared-LLC contention (real DNNs launch one kernel per
    layer), and they trigger Rule #3 re-profiling.  ``max_kernels=3`` keeps
    both effects while bounding the per-kernel profiling overhead that
    scaled traces magnify.

    Returns the :class:`~repro.gpu.system.RunResult`; when ``with_energy``
    is set, ``result.energy`` carries a
    :class:`~repro.power.gpu_power.SystemEnergyReport`.
    """
    cfg = cfg or experiment_config()
    if num_ctas is None:
        num_ctas = 2 * cfg.num_sms
    workload = generate_workload(benchmark(abbr), num_ctas=num_ctas,
                                 total_accesses=_accesses_for(abbr, scale),
                                 max_kernels=max_kernels)
    system = GPUSystem(cfg, workload, policy=mode,
                       policy_params=policy_params,
                       collect_locality=collect_locality)
    result = system.run()
    if with_energy:
        result.energy = GPUPowerModel().report(system, result)
    return result


def run_pair(abbr_a: str, abbr_b: str, mode: str,
             cfg: Optional[GPUConfig] = None, scale: float = 1.0,
             max_kernels: int = 1, num_ctas: Optional[int] = None,
             collect_locality: bool = False,
             with_energy: bool = False,
             policy_params: Optional[dict] = None) -> RunResult:
    """Run a two-program mix (Figure 15).

    Accepts the same optional flags as :func:`run_benchmark` so a campaign
    :class:`~repro.experiments.campaign.RunSpec` means the same thing
    whether it names one program or a pair.
    """
    cfg = cfg or experiment_config()
    total = max(4_000, int(60_000 * scale))
    if num_ctas is None:
        num_ctas = 2 * cfg.num_sms
    mp = make_pair(abbr_a, abbr_b, total_accesses=total,
                   num_ctas=num_ctas, max_kernels=max_kernels)
    system = GPUSystem(cfg, mp, policy=mode, policy_params=policy_params,
                       collect_locality=collect_locality)
    result = system.run()
    if with_energy:
        result.energy = GPUPowerModel().report(system, result)
    return result


def run_mix(abbr_a: str, abbr_b: str, mode_a: str, mode_b: str,
            cfg: Optional[GPUConfig] = None, scale: float = 1.0,
            max_kernels: int = 1, num_ctas: Optional[int] = None,
            collect_locality: bool = False,
            with_energy: bool = False,
            policy_params_a: Optional[dict] = None,
            policy_params_b: Optional[dict] = None) -> RunResult:
    """Run a two-program mix with *per-program* LLC policies.

    The Scenario-API sibling of :func:`run_pair`: the same workload pair
    (identical traces, placement, address offsets) but program A runs
    ``mode_a`` while program B runs ``mode_b`` — the heterogeneous
    co-execution the one-policy surface could not express.
    """
    from repro.scenario import ProgramSpec, Scenario

    cfg = cfg or experiment_config()
    total = max(4_000, int(60_000 * scale))
    if num_ctas is None:
        num_ctas = 2 * cfg.num_sms
    mp = make_pair(abbr_a, abbr_b, total_accesses=total,
                   num_ctas=num_ctas, max_kernels=max_kernels)
    scenario = Scenario.mix(
        ProgramSpec(mp.programs[0], mode_a, policy_params_a),
        ProgramSpec(mp.programs[1], mode_b, policy_params_b))
    system = GPUSystem(cfg, scenario, collect_locality=collect_locality)
    result = system.run()
    if with_energy:
        result.energy = GPUPowerModel().report(system, result)
    return result


def run_consolidation(tenants, cfg: Optional[GPUConfig] = None,
                      scale: float = 1.0, max_kernels: int = 1,
                      num_ctas: Optional[int] = None,
                      arrivals: Optional[str] = None,
                      placement: Optional[str] = None, seed: int = 0,
                      collect_locality: bool = False,
                      with_energy: bool = False) -> RunResult:
    """Run an N-tenant consolidation mix with open-system arrivals.

    ``tenants`` is a sequence of ``(benchmark, policy, params_dict)``
    triples, one per tenant in admission order.  The workloads share the
    trace budget :func:`run_pair` uses, so a two-tenant closed run is the
    same simulation as the pair path; ``arrivals`` (an
    :mod:`repro.consolidate.arrivals` spec, seeded by ``seed``) staggers
    admissions, and ``placement`` names the SM-placement policy
    (default: the generalized Figure 9 cluster-split).

    Per-request latency tracking is always on — consolidation runs exist
    to report tail latency and fairness — which forces the event
    execution tier (the accelerated tiers decline).
    """
    from repro.consolidate.arrivals import arrival_times
    from repro.scenario import ProgramSpec, Scenario
    from repro.workloads.multiprogram import make_mix

    tenants = list(tenants)
    cfg = cfg or experiment_config()
    total = max(4_000, int(60_000 * scale))
    if num_ctas is None:
        num_ctas = 2 * cfg.num_sms
    mp = make_mix(tuple(abbr for abbr, _, _ in tenants),
                  total_accesses=total, num_ctas=num_ctas,
                  max_kernels=max_kernels)
    times = arrival_times(arrivals, len(tenants), seed)
    scenario = Scenario(
        [ProgramSpec(wl, mode, params)
         for wl, (_, mode, params) in zip(mp.programs, tenants)],
        placement=placement, arrival_times=times, track_latency=True)
    system = GPUSystem(cfg, scenario, collect_locality=collect_locality)
    result = system.run()
    if with_energy:
        result.energy = GPUPowerModel().report(system, result)
    return result


def print_rows(rows: list[dict], columns: Optional[list[str]] = None) -> None:
    """Aligned plain-text table, one dict per row."""
    if not rows:
        print("(no rows)")
        return
    columns = columns or list(rows[0].keys())
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows))
              for c in columns}
    print("  ".join(c.ljust(widths[c]) for c in columns))
    for r in rows:
        print("  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
