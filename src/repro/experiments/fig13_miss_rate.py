"""Figure 13: LLC miss rate for the shared-cache-friendly workloads under
shared, private, and adaptive LLCs — the private organization inflates it
(paper: +27.9 pp average, up to +52.3 pp); adaptive stays at shared level."""

from __future__ import annotations

from repro.experiments.campaign import Campaign, RunSpec
from repro.experiments.runner import experiment_config, print_rows
from repro.report.trends import Trend, summary_row
from repro.workloads.catalog import CATEGORIES

MODES = ["shared", "private", "adaptive"]

TITLE = "Figure 13 — LLC miss rate, shared-friendly apps"
SLUG = "fig13"
PAPER_CLAIM = ("Privatizing the LLC inflates the miss rate of "
               "shared-cache-friendly workloads (paper: +27.9 pp average); "
               "the adaptive LLC keeps it at the shared level.")
CHART = ("benchmark", ["shared_miss", "private_miss", "adaptive_miss"])


def expected_trends() -> list[Trend]:
    """The figure's paper-claimed trends, checked against ``run()`` rows."""

    def private_inflates(rows):
        avg = summary_row(rows, "benchmark", "AVG")
        delta = avg["private_miss"] - avg["shared_miss"]
        return delta >= 0.0, f"AVG miss-rate delta private-shared = {delta:+.3f}"

    def adaptive_tracks_shared(rows):
        avg = summary_row(rows, "benchmark", "AVG")
        delta = avg["adaptive_miss"] - avg["shared_miss"]
        return (delta <= 0.02,
                f"AVG miss-rate delta adaptive-shared = {delta:+.3f} "
                f"(want <= +0.02)")

    return [
        Trend("private_inflates_miss_rate",
              "Private LLC raises the average miss rate of shared-friendly "
              "apps", private_inflates),
        Trend("adaptive_stays_at_shared_level",
              "Adaptive LLC keeps the average miss rate within 2 pp of the "
              "shared LLC", adaptive_tracks_shared),
    ]


def specs(scale: float = 1.0) -> list[RunSpec]:
    cfg = experiment_config()
    return [RunSpec.single(abbr, mode, cfg, scale=scale)
            for abbr in CATEGORIES["shared"] for mode in MODES]


def run(scale: float = 1.0, campaign: Campaign | None = None) -> list[dict]:
    campaign = campaign or Campaign()
    campaign.prefetch(specs(scale))
    cfg = experiment_config()
    rows = []
    sums = {m: 0.0 for m in MODES}
    for abbr in CATEGORIES["shared"]:
        results = {m: campaign.result(RunSpec.single(abbr, m, cfg,
                                                     scale=scale))
                   for m in MODES}
        row = {"benchmark": abbr}
        for m in MODES:
            row[f"{m}_miss"] = results[m].llc_miss_rate
            sums[m] += results[m].llc_miss_rate
        rows.append(row)
    n = len(CATEGORIES["shared"])
    rows.append({"benchmark": "AVG",
                 **{f"{m}_miss": sums[m] / n for m in MODES}})
    return rows


def main(scale: float = 1.0, campaign: Campaign | None = None) -> list[dict]:
    rows = run(scale, campaign=campaign)
    print(TITLE)
    print_rows(rows)
    return rows


if __name__ == "__main__":
    main()
