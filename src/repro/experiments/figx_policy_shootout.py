"""Policy shootout: every registered LLC policy over a representative
benchmark slice, normalized to the static-shared baseline.

Not a paper figure — the experiment the policy layer exists for.  The
paper reports its adaptive controller against the two statics (Figure 11);
the registry makes the interesting *fourth* column cheap: an oracle that
picks the better static per workload (the bound every dynamic policy
chases), plus naive dynamic policies (miss-rate threshold, hysteresis)
that quantify how much of paper-adaptive's win comes from its profiling
hardware (ATD + bandwidth model) versus merely being dynamic at all.

Per benchmark the driver reports one ``<policy>_norm`` IPC column per
registered policy and, for the dynamic ones, a ``<policy>_transitions``
column; a ``GM`` summary row carries geomean normalized IPC.
"""

from __future__ import annotations

from repro.experiments.campaign import Campaign, RunSpec
from repro.experiments.runner import experiment_config, print_rows, \
    scaled_policy_params
from repro.metrics.perf import geomean_speedup
from repro.report.trends import Trend

#: Shootout columns, in presentation order.  ``static-shared`` must stay
#: first: it is the normalization baseline.
POLICIES = [
    "static-shared",
    "static-private",
    "paper-adaptive",
    "miss-rate-threshold",
    "hysteresis",
    "bandit",
    "oracle-static",
]

#: Spec spelling per column.  The requested policy name is part of the
#: result payload (``RunResult.mode``) and therefore of the content key,
#: so aliases hash differently from their canonical names; declaring the
#: triad with the same legacy spellings the paper figures use lets the
#: campaign collapse those simulations across figures instead of running
#: them twice per ``repro report``.
SPEC_NAMES = {
    "static-shared": "shared",
    "static-private": "private",
    "paper-adaptive": "adaptive",
}

#: Policies whose transition counts are worth a column.
DYNAMIC_POLICIES = ["paper-adaptive", "miss-rate-threshold", "hysteresis",
                    "bandit"]

#: Two benchmarks per Table 2 category: enough spread to rank policies,
#: small enough that the 3x-cost oracle probes stay cheap.
BENCHMARKS = {
    "shared": ["GEMM", "LUD"],
    "private": ["SN", "RN"],
    "neutral": ["VA", "HG"],
}

TITLE = "Policy shootout — registered LLC policies, normalized IPC"
SLUG = "policy_shootout"
PAPER_CLAIM = ("The paper's adaptive controller approaches the per-workload "
               "best static organization (the oracle bound) without oracle "
               "knowledge, and its profiling hardware beats naive miss-rate "
               "heuristics that are merely dynamic.")
CHART = ("benchmark", [f"{p}_norm" for p in POLICIES])


def expected_trends() -> list[Trend]:
    def oracle_is_best_static(rows):
        """Determinism check: the oracle's measured run IS the winning
        static run, so its normalized IPC must equal max(statics)."""
        worst = 0.0
        for row in _bench_rows(rows):
            best = max(row["static-shared_norm"], row["static-private_norm"])
            worst = max(worst, abs(row["oracle-static_norm"] - best))
        return (worst <= 1e-9,
                f"max |oracle - best static| = {worst:.2e} (want <= 1e-9)")

    def adaptive_tracks_oracle(rows):
        gm = _summary(rows)
        ratio = gm["paper-adaptive_norm"] / gm["oracle-static_norm"]
        return (ratio >= 0.90,
                f"geomean paper-adaptive / oracle = {ratio:.3f} "
                f"(want >= 0.90)")

    def adaptive_beats_naive_heuristics(rows):
        gm = _summary(rows)
        naive = max(gm["miss-rate-threshold_norm"], gm["hysteresis_norm"])
        return (gm["paper-adaptive_norm"] >= naive - 0.02,
                f"geomean: paper-adaptive {gm['paper-adaptive_norm']:.3f} "
                f"vs best naive heuristic {naive:.3f}")

    def hysteresis_damps_transitions(rows):
        bench = _bench_rows(rows)
        hyst = sum(r["hysteresis_transitions"] for r in bench)
        thresh = sum(r["miss-rate-threshold_transitions"] for r in bench)
        return (hyst <= thresh,
                f"total transitions: hysteresis {hyst} vs threshold "
                f"{thresh}")

    return [
        Trend("oracle_is_best_static",
              "The oracle policy reproduces the better static "
              "organization exactly, per workload", oracle_is_best_static),
        Trend("adaptive_tracks_oracle",
              "Paper-adaptive captures >= 90% of the oracle's geomean "
              "normalized IPC", adaptive_tracks_oracle),
        Trend("adaptive_beats_naive_heuristics",
              "The paper's profiled controller is at least as good as "
              "naive miss-rate heuristics", adaptive_beats_naive_heuristics),
        Trend("hysteresis_damps_transitions",
              "A dwell requirement never increases the transition count "
              "relative to the bare threshold policy",
              hysteresis_damps_transitions),
    ]


def _bench_rows(rows) -> list[dict]:
    return [r for r in rows if r["benchmark"] != "GM"]


def _summary(rows) -> dict:
    for row in rows:
        if row["benchmark"] == "GM":
            return row
    raise KeyError("no GM summary row")


def _benchmarks(categories: dict | None) -> list[tuple[str, str]]:
    table = categories or BENCHMARKS
    return [(abbr, cat) for cat, abbrs in table.items() for abbr in abbrs]


def _column_spec(abbr: str, policy: str, cfg, scale: float) -> RunSpec:
    """One shootout cell: legacy spelling for the triad (cross-figure
    dedup) and scale-derived window parameters for the interval policies
    (so smoke/small columns actually transition)."""
    return RunSpec.single(abbr, SPEC_NAMES.get(policy, policy), cfg,
                          scale=scale,
                          policy_params=scaled_policy_params(policy, scale)
                          or None)


def specs(scale: float = 1.0,
          categories: dict | None = None) -> list[RunSpec]:
    cfg = experiment_config()
    return [_column_spec(abbr, policy, cfg, scale)
            for abbr, _cat in _benchmarks(categories)
            for policy in POLICIES]


def run(scale: float = 1.0, categories: dict | None = None,
        campaign: Campaign | None = None) -> list[dict]:
    campaign = campaign or Campaign()
    campaign.prefetch(specs(scale, categories))
    cfg = experiment_config()
    rows = []
    norms: dict[str, list[float]] = {p: [] for p in POLICIES}
    for abbr, category in _benchmarks(categories):
        results = {p: campaign.result(_column_spec(abbr, p, cfg, scale))
                   for p in POLICIES}
        base = results["static-shared"].ipc
        row = {"benchmark": abbr, "category": category}
        for p in POLICIES:
            row[f"{p}_norm"] = results[p].ipc / base
            norms[p].append(row[f"{p}_norm"])
        for p in DYNAMIC_POLICIES:
            row[f"{p}_transitions"] = results[p].transitions
        rows.append(row)
    gm = {"benchmark": "GM", "category": "all"}
    for p in POLICIES:
        gm[f"{p}_norm"] = geomean_speedup(norms[p])
    for p in DYNAMIC_POLICIES:
        gm[f"{p}_transitions"] = sum(r[f"{p}_transitions"]
                                     for r in rows)
    rows.append(gm)
    return rows


def main(scale: float = 1.0, campaign: Campaign | None = None) -> list[dict]:
    rows = run(scale, campaign=campaign)
    print(TITLE)
    print_rows(rows)
    return rows


if __name__ == "__main__":
    main()
