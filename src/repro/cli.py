"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        simulate one benchmark under one LLC policy, or a
               two-program mix with per-program policies
               (``--mix GEMM:paper-adaptive+SN:static-private``)
``bench``      time the simulator hot path and write BENCH_hotpath.json
``compare``    one benchmark under all three classic policies, side by side
``figure``     regenerate a paper figure (2, 3, 7, 11, 12, 13, 14, 15, 16),
               a named experiment (``policy_shootout``), or everything at
               once (``figure all``)
``report``     run the whole campaign and build the HTML+Markdown paper
               artifact with per-figure fidelity badges
``sweep``      declarative campaign sweep over benchmarks x policies x
               config overrides; ``--pairs A+B [--policy-b NAME]``
               sweeps two-program mixes instead of singles
``serve``      run the campaign job server: an async HTTP/JSON job API
               (``POST /jobs`` → poll → ``GET /results/<key>``) sharding
               queued specs over worker processes, content-key
               idempotent, sharing the on-disk result store
``policy``     ``policy list`` / ``policy show NAME``: the LLC-policy
               registry with parameter schemas
``tables``     print Tables 1 and 2
``catalog``    list the benchmark suite with its category parameters
``analyze``    characterize a generated workload trace

``run``, ``compare``, ``figure``, ``report`` and ``sweep`` accept
``--jobs N`` (fan the simulations out over N worker processes) and
``--cache-dir DIR`` (memoize finished runs on disk, keyed by the content
hash of the full run spec, so repeated figures and overlapping sweeps
never re-simulate).  ``--scale`` takes a float or a named preset
(``smoke``/``small``/``medium``/``paper``).  Policies are given as
``NAME[:key=value,...]`` (``repro policy list`` shows the registry), e.g.
``--policy hysteresis:dwell=3``; below ``--scale 0.25`` the interval
policies' window parameters shrink with the trace
(:func:`~repro.experiments.runner.scaled_policy_params`) unless given
explicitly.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys

from repro.config import PolicyConfig
from repro.experiments import FIGURE_MODULES, figure_module, figure_sort_key
from repro.experiments.campaign import Campaign, RunSpec, spec_from_mix
from repro.experiments.runner import experiment_config, print_rows, \
    scaled_policy_params
from repro.policy import available_policies, canonical_policy_name, \
    policy_class
from repro.scenario import parse_mix
from repro.workloads.analysis import characterize, verify_category
from repro.workloads.catalog import ALL_ABBRS, BENCHMARKS, build

#: The classic triad (aliases into the policy registry), kept for
#: ``compare`` and as ``run --mode`` back-compat.
MODES = ("shared", "private", "adaptive")

#: Named trace-scale presets accepted anywhere ``--scale`` is.
SCALE_PRESETS = {
    "smoke": 0.02,   # fastest runs that still have shape (CI smoke)
    "small": 0.05,   # figures keep their qualitative trends
    "medium": 0.25,  # closer quantitative match, minutes not hours
    "paper": 1.0,    # the calibrated full-size traces
    "full": 1.0,
}


def parse_scale(text: str) -> float:
    """``--scale`` values: a positive float or a named preset."""
    preset = SCALE_PRESETS.get(text.lower())
    if preset is not None:
        return preset
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"scale {text!r} is neither a number nor one of "
            f"{sorted(set(SCALE_PRESETS))}")
    if value <= 0:
        raise argparse.ArgumentTypeError("scale must be positive")
    return value


def _campaign_from(args: argparse.Namespace) -> Campaign:
    return Campaign(jobs=getattr(args, "jobs", 1),
                    cache_dir=getattr(args, "cache_dir", None))


def _add_campaign_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for the simulations")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="on-disk result cache (content-keyed JSON)")


def _parse_policy_arg(text: str) -> PolicyConfig:
    """``--policy NAME[:k=v,...]`` values, name-validated against the
    registry so typos fail at parse time, not mid-simulation."""
    try:
        pc = PolicyConfig.from_spec(text)
        canonical_policy_name(pc.name)
        policy_class(pc.name).canonical_params(pc.params_dict())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return pc


def _scaled_policy(policy: PolicyConfig, scale: float) -> PolicyConfig:
    """Apply the trace-scale-derived window parameters (explicit
    parameters always win; non-interval policies pass through)."""
    return PolicyConfig.of(policy.name,
                           scaled_policy_params(policy.name, scale,
                                                policy.params_dict()))


def _parse_mix_arg(text: str) -> list[tuple[str, PolicyConfig]]:
    """``--mix`` values: ``BENCH[:POLICY[:k=v,...]]+BENCH[...]``, with
    benchmarks checked against the catalog and policies against the
    registry at parse time."""
    try:
        entries = parse_mix(text)
        for abbr, policy in entries:
            if abbr not in BENCHMARKS:
                raise ValueError(f"unknown benchmark {abbr!r} in mix "
                                 f"(see `repro catalog`)")
            if policy is not None:
                canonical_policy_name(policy.name)
                policy_class(policy.name).canonical_params(
                    policy.params_dict())
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return entries


def _parse_arrivals_arg(text: str) -> str:
    """``--arrivals NAME[:k=v,...]`` values, validated against the arrival
    registry at parse time (the spec string itself is what travels)."""
    from repro.consolidate.arrivals import create_arrivals

    try:
        create_arrivals(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _parse_placement_arg(text: str) -> str:
    """``--placement NAME[:k=v,...]`` values, validated against the
    placement registry at parse time."""
    from repro.consolidate.placement import create_placement

    try:
        create_placement(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return text


def _cmd_run(args: argparse.Namespace) -> int:
    if args.policy is not None and args.mode is not None:
        # Mirror GPUSystem: the same conflict is a hard error there.
        print("error: pass either --policy or the deprecated --mode, "
              "not both", file=sys.stderr)
        return 2
    sources = sum(x is not None
                  for x in (args.benchmark, args.mix, args.tenants))
    if sources != 1:
        print("error: pass exactly one of a benchmark, --mix, or "
              "--tenants", file=sys.stderr)
        return 2
    default_policy = args.policy if args.policy is not None \
        else PolicyConfig.of(args.mode or "adaptive")
    campaign = _campaign_from(args)
    if args.tenants is not None:
        # Seeded Monte Carlo mix: sample one benchmark per tenant from
        # the catalog categories, then run it like an explicit --mix.
        from repro.consolidate.mixgen import sample_mix

        try:
            abbrs = sample_mix(args.tenants, seed=args.seed)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        args.mix = [(abbr, None) for abbr in abbrs]
    if args.mix is not None:
        return _run_mix(args, campaign, default_policy)
    if args.arrivals is not None or args.placement is not None:
        print("error: --arrivals/--placement need a multi-program run "
              "(--mix or --tenants)", file=sys.stderr)
        return 2
    policy = _scaled_policy(default_policy, args.scale)
    res = campaign.result(RunSpec.single(args.benchmark, policy,
                                         scale=args.scale))
    # Report the spec as executed (scale-derived window parameters
    # included), matching the --mix path and the cached RunSpec key.
    print(f"{args.benchmark} [{policy.spec()}]: IPC {res.ipc:.2f} "
          f"over {res.cycles:.0f} cycles")
    print(f"  LLC: miss rate {res.llc_miss_rate:.3f}, response rate "
          f"{res.llc_response_rate:.2f} flits/cycle")
    print(f"  DRAM: {res.dram_reads} reads, {res.dram_writes} writes")
    if res.transitions or res.time_in_private:
        print(f"  policy: {res.transitions} transitions, "
              f"{res.time_in_private / res.cycles:.0%} time private")
    return 0


def _run_mix(args: argparse.Namespace, campaign: Campaign,
             default_policy: PolicyConfig) -> int:
    """``repro run --mix A:policy+B:policy``: a per-program-policy
    scenario through the campaign."""
    # One conversion shared with the service wire format: the spec (and
    # therefore the content key) of a mix is the same no matter which
    # surface declared it.
    spec = spec_from_mix(args.mix, scale=args.scale,
                         default_policy=default_policy,
                         arrivals=args.arrivals, placement=args.placement,
                         seed=args.seed)
    entries = spec.program_entries()
    res = campaign.result(spec)
    print(f"{res.workload} [{res.mode}]: IPC {res.ipc:.2f} over "
          f"{res.cycles:.0f} cycles")
    print(f"  LLC: miss rate {res.llc_miss_rate:.3f}, response rate "
          f"{res.llc_response_rate:.2f} flits/cycle")
    if res.programs:
        for (abbr, policy_spec), stats in zip(entries, res.programs):
            line = f"  {stats.name} [{stats.policy or policy_spec}]: " \
                   f"IPC {stats.ipc:.2f}"
            if stats.policy:
                # Per-program transition counts exist only for
                # heterogeneous runs; a homogeneous mix collapses to the
                # legacy one-policy path, whose per-program breakdown
                # would print a fabricated 0 (the aggregate line below
                # carries the real total).
                line += f", {stats.transitions} transitions"
            if stats.admitted_at is not None:
                line += f", admitted @{stats.admitted_at:.0f}"
            if stats.latency is not None:
                line += (f", latency p50/p95/p99 "
                         f"{stats.latency['p50']:.0f}/"
                         f"{stats.latency['p95']:.0f}/"
                         f"{stats.latency['p99']:.0f}")
            print(line)
        if any(s.latency is not None for s in res.programs):
            from repro.consolidate.metrics import jains_fairness

            fairness = jains_fairness([s.ipc for s in res.programs])
            print(f"  fairness: Jain's index {fairness:.3f} over "
                  f"per-tenant IPC")
    else:
        # One-entry mix: a single-program run, reported as one program.
        (abbr, policy_spec), = entries
        print(f"  {abbr} [{policy_spec}]: IPC {res.ipc:.2f}, "
              f"{res.transitions} transitions")
    if res.transitions or res.time_in_private:
        print(f"  policy: {res.transitions} transitions, "
              f"{res.time_in_private / res.cycles:.0%} time private")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (EVENT_ONLY, SCENARIOS, TIERS, compare_bench,
                             load_bench, parse_speedup_gates,
                             profile_scenario, run_bench, scenario_key,
                             tier_speedups, write_bench)

    tiers = TIERS if args.tier in ("both", "all") else (args.tier,)
    try:
        gates = parse_speedup_gates(args.min_tier_speedup)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    data = run_bench(args.scale, benchmark_abbr=args.benchmark,
                     repeat=args.repeat, tiers=tiers)
    rows = [{"scenario": key, "tier": row["tier"],
             "wall_s": row["wall_s"], "events": row["events"],
             "events_per_sec": row["events_per_sec"],
             "cycles": row["cycles"]}
            for key, row in data.items() if not key.startswith("_")]
    print_rows(rows)
    write_bench(args.out, data)
    print(f"[bench] wrote {args.out}")
    if args.profile:
        profile_path = (args.out[:-len(".json")]
                        if args.out.endswith(".json") else args.out)
        profile_path += ".profile.txt"
        sections = []
        for name, mode, counters in SCENARIOS:
            scenario_tiers = tuple(t for t in tiers if t == "event") \
                if name in EVENT_ONLY else tiers
            for tier in scenario_tiers:
                key = scenario_key(name, tier)
                table = profile_scenario(args.benchmark, mode, args.scale,
                                         tier=tier, counters=counters,
                                         arrivals=name in EVENT_ONLY,
                                         top=args.profile_top)
                sections.append(f"==== {key} ====\n{table}")
        with open(profile_path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(sections))
        print(f"[bench] wrote {profile_path}")
    ok = True
    for (num, den), min_speedup in sorted(gates.items()):
        speedups = tier_speedups(data, num, den)
        if not speedups:
            print(f"error: --min-tier-speedup {num}/{den} needs both "
                  "tiers timed (use --tier both)", file=sys.stderr)
            ok = False
            continue
        # Gate on the geometric mean: per-scenario ratios at small scales
        # swing wildly run to run (each sample is tens of milliseconds),
        # while the mean across scenarios is stable — and a vanished
        # speedup (a tier silently declining, a pessimized hot loop)
        # drags the mean to ~1.0 just the same.
        geomean = statistics.geometric_mean(speedups.values())
        detail = ", ".join(f"{scenario} {speedup:.2f}x"
                           for scenario, speedup in sorted(speedups.items()))
        if geomean < min_speedup:
            print(f"error: tier speedup — {num} is only {geomean:.2f}x "
                  f"the {den} tier (geomean over scenarios, gate "
                  f"{min_speedup:.2f}x; {detail})", file=sys.stderr)
            ok = False
        else:
            print(f"[bench] {num} {geomean:.2f}x {den} tier (geomean "
                  f"over scenarios, gate {min_speedup:.2f}x; {detail})")
    if args.baseline:
        failures = compare_bench(data, load_bench(args.baseline),
                                 max_regress=args.max_regress)
        if failures:
            for failure in failures:
                print(f"error: perf regression — {failure}", file=sys.stderr)
            ok = False
        else:
            print(f"[bench] within {args.max_regress:.0%} of "
                  f"{args.baseline}")
    return 0 if ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    campaign = _campaign_from(args)
    specs = [RunSpec.single(args.benchmark, mode, scale=args.scale)
             for mode in MODES]
    results = campaign.results(specs)
    rows = []
    base = None
    for mode, res in zip(MODES, results):
        if base is None:
            base = res.ipc
        vs_shared = res.ipc / base if base > 0 else float("nan")
        rows.append({"mode": mode, "ipc": res.ipc, "vs_shared": vs_shared,
                     "llc_miss": res.llc_miss_rate,
                     "resp_rate": res.llc_response_rate})
    print_rows(rows)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    campaign = _campaign_from(args)
    numbers = (sorted(FIGURE_MODULES, key=figure_sort_key)
               if args.number == "all" else [args.number])
    modules = [(num, figure_module(num)) for num in numbers]
    # Declare every figure's specs up front: identical runs collapse to one
    # simulation across figures, and the whole batch shares the worker pool.
    all_specs = []
    for _, module in modules:
        all_specs.extend(module.specs(scale=args.scale))
    campaign.prefetch(all_specs)
    for i, (_, module) in enumerate(modules):
        if i:
            print()
        module.main(scale=args.scale, campaign=campaign)
    if len(modules) > 1:
        print(f"\n{_campaign_summary(campaign, all_specs)}")
    return 0


def _campaign_summary(campaign: Campaign, specs: list[RunSpec]) -> str:
    """One-line accounting: how much work the campaign declared vs ran.

    Duplicates are counted from the declared batch itself (specs whose
    content key repeats), not from the campaign's memo traffic — figure
    drivers re-read memoized results freely, which is not deduplication.
    """
    duplicates = len(specs) - len({spec.cache_key() for spec in specs})
    return (f"[campaign] {campaign.executed} simulations, "
            f"{campaign.cache_hits} disk-cache hits, "
            f"{duplicates} duplicate specs merged")


def _parse_override(text: str) -> tuple[str, object]:
    """``key=value`` / ``noc.key=value`` with JSON-typed values."""
    if "=" not in text:
        raise argparse.ArgumentTypeError(
            f"override {text!r} is not of the form key=value")
    key, _, raw = text.partition("=")
    try:
        value = json.loads(raw)
    except ValueError:
        value = raw  # bare strings ("hynix") need no quoting
    return key.strip(), value


def sweep_config(overrides: list[tuple[str, object]]):
    """Scaled experiment config + dotted-path overrides, via the canonical
    serialization (``noc.channel_bytes=16``, ``adaptive.epoch_cycles=...``,
    ``dram_timing.tCL=...``, or any top-level ``GPUConfig`` field)."""
    from repro.config import GPUConfig

    data = experiment_config().to_dict()
    for key, value in overrides:
        node = data
        parts = key.split(".")
        for part in parts[:-1]:
            if not isinstance(node.get(part), dict):
                raise ValueError(f"unknown config group {part!r} in {key!r}")
            node = node[part]
        if parts[-1] not in node:
            raise ValueError(f"unknown config field {key!r}")
        current = node[parts[-1]]
        ok = (isinstance(value, bool) if isinstance(current, bool)
              else isinstance(value, int) and not isinstance(value, bool)
              if isinstance(current, int)
              else isinstance(value, (int, float)) and not isinstance(value, bool)
              if isinstance(current, float)
              else isinstance(value, type(current)))
        if not ok:
            raise ValueError(
                f"{key!r} expects {type(current).__name__}, "
                f"got {value!r} ({type(value).__name__})")
        if isinstance(current, float):
            # Canonicalize so `--set x=0` and `--set x=0.0` serialize (and
            # therefore content-hash) identically.
            value = float(value)
        node[parts[-1]] = value
    cfg = GPUConfig.from_dict(data)
    cfg.validate()
    return cfg


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        cfg = sweep_config(args.set or [])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    benchmarks = args.benchmarks.split(",") if args.benchmarks else ALL_ABBRS
    unknown = [b for b in benchmarks if b not in BENCHMARKS]
    if unknown:
        print(f"error: unknown benchmarks {unknown}", file=sys.stderr)
        return 2
    if args.policy:
        policies = list(args.policy)  # already parsed + validated
    else:
        policies = []
        for name in args.modes.split(","):
            try:
                canonical_policy_name(name)  # registry validation only
            except ValueError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            policies.append(PolicyConfig.of(name))

    if args.pairs:
        return _sweep_pairs(args, cfg, policies)
    if args.policy_b is not None:
        print("error: --policy-b requires --pairs (program B of a mix)",
              file=sys.stderr)
        return 2
    campaign = _campaign_from(args)
    specs = [RunSpec.single(abbr, _scaled_policy(policy, args.scale), cfg,
                            scale=args.scale)
             for abbr in benchmarks for policy in policies]
    results = campaign.results(specs)
    rows = []
    for spec, res, policy in zip(specs, results,
                                 [p for _ in benchmarks for p in policies]):
        rows.append({
            "benchmark": spec.benchmark,
            "policy": policy.spec(),
            "ipc": res.ipc,
            "llc_miss": res.llc_miss_rate,
            "resp_rate": res.llc_response_rate,
            "time_priv": (res.time_in_private / res.cycles
                          if res.cycles else 0.0),
        })
    print_rows(rows)
    print(_campaign_summary(campaign, specs))
    return 0


def _sweep_pairs(args: argparse.Namespace, cfg, policies) -> int:
    """``sweep --pairs A+B,... [--policy-b POLICY]``: two-program mixes,
    program A sweeping the policy columns, program B pinned to
    ``--policy-b`` (default: program A's policy, the homogeneous mix)."""
    pairs = []
    for token in args.pairs.split(","):
        parts = [p.strip() for p in token.split("+")]
        if len(parts) != 2:
            print(f"error: pair {token!r} is not of the form A+B",
                  file=sys.stderr)
            return 2
        unknown = [p for p in parts if p not in BENCHMARKS]
        if unknown:
            print(f"error: unknown benchmarks {unknown}", file=sys.stderr)
            return 2
        pairs.append((parts[0], parts[1]))
    policy_b = (_scaled_policy(args.policy_b, args.scale)
                if args.policy_b is not None else None)
    campaign = _campaign_from(args)
    specs, labels = [], []
    for a, b in pairs:
        for policy in policies:
            scaled = _scaled_policy(policy, args.scale)
            specs.append(RunSpec.pair(a, b, scaled, cfg, scale=args.scale,
                                      mode_b=policy_b))
            labels.append((f"{a}+{b}", policy.spec(),
                           (args.policy_b or policy).spec()))
    results = campaign.results(specs)
    rows = []
    for (pair, pol_a, pol_b), res in zip(labels, results):
        row = {
            "pair": pair,
            "policy_a": pol_a,
            "policy_b": pol_b,
            "stp_ipc": res.ipc,
            "llc_miss": res.llc_miss_rate,
            "transitions": res.transitions,
        }
        for suffix, stats in zip(("a", "b"), res.programs):
            row[f"ipc_{suffix}"] = stats.ipc
        rows.append(row)
    print_rows(rows)
    print(_campaign_summary(campaign, specs))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report.builder import ReportBuilder

    figures = ([tok.strip() for tok in args.figures.split(",") if tok.strip()]
               if args.figures else None)
    formats = (["html", "md"] if args.format == "both"
               else [args.format])
    try:
        builder = ReportBuilder(args.out, scale=args.scale,
                                campaign=_campaign_from(args),
                                formats=formats, figures=figures)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = builder.build(progress=True)
    statuses = [f"fig {f.number}: {f.status}" for f in result.figures]
    print(f"[report] fidelity: {', '.join(statuses)}")
    print(f"[report] artifact in {result.out_dir}/ "
          f"({', '.join(result.index_paths)})")
    if result.has_errors:
        print("error: at least one expected_trends() check raised "
              "(see the ERROR badges in the report)", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.config import ServiceConfig
    from repro.service.server import JobServer

    try:
        cfg = ServiceConfig(host=args.host, port=args.port,
                            workers=args.workers, cache_dir=args.cache_dir,
                            quota=args.quota, max_queue=args.max_queue,
                            job_ttl=args.job_ttl)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = JobServer(cfg)

    async def _serve() -> None:
        await server.start()
        store = cfg.cache_dir or "in-memory"
        print(f"[serve] campaign job server on "
              f"http://{cfg.host}:{server.port} — {cfg.workers} workers, "
              f"results {store}", flush=True)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("[serve] stopped")
    return 0


def _cmd_policy(args: argparse.Namespace) -> int:
    registry = available_policies()
    if args.action == "list":
        rows = []
        for name, cls in registry.items():
            params = ", ".join(f"{p.name}={p.default}" for p in cls.PARAMS)
            rows.append({"policy": name,
                         "aliases": ",".join(cls.ALIASES) or "-",
                         "params": params or "-",
                         "description": cls.DESCRIPTION})
        print_rows(rows)
        print(f"\n{len(registry)} policies registered; "
              f"use --policy NAME[:key=value,...] or "
              f"`repro policy show NAME` for parameter docs")
        return 0
    # show NAME
    try:
        cls = policy_class(args.name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"{cls.NAME}")
    if cls.ALIASES:
        print(f"  aliases: {', '.join(cls.ALIASES)}")
    print(f"  {cls.DESCRIPTION}")
    doc = (cls.__doc__ or "").strip()
    if doc:
        print(f"  {doc.splitlines()[0]}")
    if cls.PARAMS:
        print("  parameters:")
        for p in cls.PARAMS:
            choices = f" (one of {list(p.choices)})" if p.choices else ""
            print(f"    {p.name} ({p.type.__name__}, default "
                  f"{p.default!r}){choices}: {p.doc}")
    else:
        print("  parameters: none")
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    # Imported lazily: the analysis package is a self-contained island
    # and most CLI invocations never need it.
    from repro.analysis import (Baseline, available_rules, create_rule,
                                render_json, render_text, run_check)

    if args.list_rules:
        rows = []
        for name, cls in available_rules().items():
            params = ", ".join(f"{p.name}={p.default}" for p in cls.PARAMS)
            rows.append({"rule": name, "params": params or "-",
                         "description": cls.DESCRIPTION})
        print_rows(rows)
        print("\nuse --rules NAME[:key=value,...][,NAME...] to run a "
              "subset")
        return 0

    try:
        if args.rules:
            rules = [create_rule(spec.strip())
                     for spec in args.rules.split(",") if spec.strip()]
        else:
            rules = None
        baseline = Baseline.load(args.baseline)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    paths = tuple(args.paths) if args.paths else None
    try:
        if args.fix_baseline:
            # Regenerate from a baseline-free run so every current
            # finding is grandfathered, deterministically.
            report = run_check(paths or ("src/repro",), rules=rules)
            Baseline.from_findings(report.findings).save(args.baseline)
            print(f"wrote {args.baseline}: "
                  f"{len(report.findings)} grandfathered findings")
            return 0
        report = run_check(paths or ("src/repro",), rules=rules,
                           baseline=baseline)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    render = render_json if args.format == "json" else render_text
    sys.stdout.write(render(report))
    return 0 if report.ok else 1


def _cmd_tables(_args: argparse.Namespace) -> int:
    from repro.experiments import tables

    tables.main()
    return 0


def _cmd_catalog(_args: argparse.Namespace) -> int:
    rows = []
    for abbr in ALL_ABBRS:
        s = BENCHMARKS[abbr]
        rows.append({"abbr": abbr, "name": s.name, "category": s.category,
                     "shared_mb": s.shared_mb, "kernels": s.num_kernels,
                     "shared_frac": s.shared_frac,
                     "instrs_per_access": s.instrs_per_access})
    print_rows(rows)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    workload = build(args.benchmark,
                     total_accesses=int(40_000 * args.scale))
    profile = characterize(workload)
    for field in ("name", "category", "total_accesses", "distinct_lines",
                  "footprint_mb", "write_fraction", "shared_line_fraction",
                  "shared_access_fraction", "max_sharers",
                  "accesses_per_line"):
        value = getattr(profile, field)
        if isinstance(value, float):
            value = f"{value:.4f}"
        print(f"  {field}: {value}")
    problems = verify_category(profile)
    if problems:
        print("category violations:")
        for p in problems:
            print(f"  ! {p}")
        return 1
    print("category checks: OK")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive memory-side last-level GPU caching (ISCA'19) "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one benchmark or a "
                                       "per-program-policy mix")
    p_run.add_argument("benchmark", nargs="?", choices=ALL_ABBRS,
                       help="catalog benchmark (omit when using --mix)")
    p_run.add_argument("--mix", type=_parse_mix_arg, default=None,
                       metavar="BENCH[:POLICY]+BENCH[:POLICY]+...",
                       help="multi-program mix with per-program policies, "
                            "e.g. GEMM:paper-adaptive+SN:static-private; "
                            "an entry without a policy uses --policy; "
                            "three or more entries run as an N-tenant "
                            "consolidation")
    p_run.add_argument("--tenants", type=int, default=None, metavar="N",
                       help="sample an N-tenant mix from the catalog "
                            "categories (seeded by --seed) instead of "
                            "naming one with --mix")
    p_run.add_argument("--arrivals", type=_parse_arrivals_arg, default=None,
                       metavar="NAME[:k=v,...]",
                       help="arrival process for a multi-program run "
                            "(closed/poisson/diurnal/bursty; "
                            "default: closed, everyone at time zero)")
    p_run.add_argument("--placement", type=_parse_placement_arg,
                       default=None, metavar="NAME[:k=v,...]",
                       help="SM-placement policy for a multi-program run "
                            "(cluster-split/striped/fill-first/"
                            "dedicated-cluster; default: cluster-split, "
                            "the Figure 9 split)")
    p_run.add_argument("--seed", type=int, default=0, metavar="N",
                       help="RNG seed for --tenants sampling and the "
                            "arrival process (default: 0)")
    p_run.add_argument("--policy", type=_parse_policy_arg, default=None,
                       metavar="NAME[:k=v,...]",
                       help="any registered LLC policy with parameters "
                            "(see `repro policy list`); default: adaptive")
    p_run.add_argument("--mode", default=None, choices=list(MODES),
                       help="deprecated alias for --policy "
                            "(classic triad only)")
    p_run.add_argument("--scale", type=parse_scale, default=1.0,
                       metavar="S",
                       help="trace scale: float or preset "
                            "(smoke/small/medium/paper)")
    _add_campaign_flags(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_bench = sub.add_parser("bench", help="time the simulator hot path "
                                           "(events/sec per LLC policy)")
    p_bench.add_argument("--benchmark", default="VA", choices=ALL_ABBRS,
                         help="workload to time (default: VA)")
    p_bench.add_argument("--scale", type=parse_scale, default=0.25,
                         metavar="S",
                         help="trace scale: float or preset "
                              "(smoke/small/medium/paper); default medium")
    p_bench.add_argument("--repeat", type=int, default=1, metavar="N",
                         help="timing attempts per scenario (every sample "
                              "recorded; median events/sec reported)")
    p_bench.add_argument("--tier", default="both",
                         choices=("event", "fastpath", "batch", "both",
                                  "all"),
                         help="execution tier(s) to time; both/all time "
                              "every tier (default: both)")
    p_bench.add_argument("--min-tier-speedup", default="", metavar="SPEC",
                         help="speedup gate(s): a bare float X fails "
                              "unless fastpath's geometric-mean speedup "
                              "across scenarios is at least X times the "
                              "event tier; the pair form "
                              "'batch/event=1.6,fastpath/event=1.3' "
                              "gates arbitrary tier ratios (needs the "
                              "named tiers timed; empty disables)")
    p_bench.add_argument("--profile", action="store_true",
                         help="additionally cProfile one run per scenario "
                              "and write the top functions by cumulative "
                              "time next to the JSON record")
    p_bench.add_argument("--profile-top", type=int, default=25, metavar="N",
                         help="rows per scenario in the profile dump "
                              "(default: 25)")
    p_bench.add_argument("--out", default="BENCH_hotpath.json", metavar="FILE",
                         help="output record (default: BENCH_hotpath.json)")
    p_bench.add_argument("--baseline", default=None, metavar="FILE",
                         help="compare events/sec against this committed "
                              "record and fail on regression")
    p_bench.add_argument("--max-regress", type=float, default=0.30,
                         metavar="F",
                         help="allowed fractional slowdown vs the baseline "
                              "(default: 0.30)")
    p_bench.set_defaults(fn=_cmd_bench)

    p_cmp = sub.add_parser("compare", help="all three LLC policies")
    p_cmp.add_argument("benchmark", choices=ALL_ABBRS)
    p_cmp.add_argument("--scale", type=parse_scale, default=1.0,
                       metavar="S",
                       help="trace scale: float or preset "
                            "(smoke/small/medium/paper)")
    _add_campaign_flags(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure "
                                          "(or 'all' for every figure)")
    p_fig.add_argument("number",
                       choices=sorted(FIGURE_MODULES, key=figure_sort_key)
                       + ["all"])
    p_fig.add_argument("--scale", type=parse_scale, default=1.0,
                       metavar="S",
                       help="trace scale: float or preset "
                            "(smoke/small/medium/paper)")
    _add_campaign_flags(p_fig)
    p_fig.set_defaults(fn=_cmd_figure)

    p_rep = sub.add_parser("report", help="build the full reproduction "
                                          "report (HTML+MD artifact)")
    p_rep.add_argument("--out", default="report", metavar="DIR",
                       help="artifact directory (default: report/)")
    p_rep.add_argument("--format", default="both",
                       choices=["html", "md", "both"],
                       help="page formats to render (default: both)")
    p_rep.add_argument("--figures", default=None, metavar="N,N,...",
                       help="comma-separated figure numbers "
                            "(default: every figure)")
    p_rep.add_argument("--scale", type=parse_scale, default=1.0,
                       metavar="S",
                       help="trace scale: float or preset "
                            "(smoke/small/medium/paper)")
    _add_campaign_flags(p_rep)
    p_rep.set_defaults(fn=_cmd_report)

    p_sw = sub.add_parser("sweep", help="campaign sweep over benchmarks x "
                                        "modes x config overrides")
    p_sw.add_argument("--benchmarks", default=None,
                      help="comma-separated abbreviations (default: all 17)")
    p_sw.add_argument("--modes", default="shared,private,adaptive",
                      help="comma-separated LLC policy names (no params; "
                           "use --policy for parameterized entries)")
    p_sw.add_argument("--policy", action="append", type=_parse_policy_arg,
                      metavar="NAME[:k=v,...]",
                      help="policy column with parameters; repeatable, "
                           "overrides --modes when given")
    p_sw.add_argument("--pairs", default=None, metavar="A+B,C+D,...",
                      help="sweep two-program mixes instead of singles "
                           "(program A runs the policy columns)")
    p_sw.add_argument("--policy-b", type=_parse_policy_arg, default=None,
                      metavar="NAME[:k=v,...]",
                      help="program B's policy for --pairs mixes "
                           "(default: same as program A — homogeneous)")
    p_sw.add_argument("--scale", type=parse_scale, default=1.0,
                       metavar="S",
                       help="trace scale: float or preset "
                            "(smoke/small/medium/paper)")
    p_sw.add_argument("--set", action="append", type=_parse_override,
                      metavar="KEY=VALUE",
                      help="config override, dotted for nested groups "
                           "(e.g. --set noc.channel_bytes=16); repeatable")
    _add_campaign_flags(p_sw)
    p_sw.set_defaults(fn=_cmd_sweep)

    p_srv = sub.add_parser("serve", help="run the campaign job server "
                                         "(async HTTP/JSON job API)")
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    p_srv.add_argument("--port", type=int, default=8642, metavar="P",
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8642)")
    p_srv.add_argument("--workers", type=int, default=2, metavar="N",
                       help="worker processes sharding queued specs "
                            "(default: 2)")
    p_srv.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared on-disk result store (content-keyed "
                            "JSON, same layout as campaign --cache-dir); "
                            "results survive restarts")
    p_srv.add_argument("--quota", type=int, default=0, metavar="N",
                       help="max in-flight jobs per client, 429 past it "
                            "(default: 0 = unlimited)")
    p_srv.add_argument("--job-ttl", type=float, default=0.0, metavar="S",
                       help="age terminal job records (done/error/"
                            "cancelled) out of the job table after S "
                            "seconds; results stay in the store "
                            "(default: 0, keep forever)")
    p_srv.add_argument("--max-queue", type=int, default=1024, metavar="N",
                       help="max queued jobs overall, 503 past it "
                            "(default: 1024)")
    p_srv.set_defaults(fn=_cmd_serve)

    p_pol = sub.add_parser("policy", help="inspect the LLC-policy registry")
    pol_sub = p_pol.add_subparsers(dest="action", required=True)
    pol_sub.add_parser("list", help="every registered policy, one line each")
    p_pol_show = pol_sub.add_parser("show",
                                    help="one policy's parameter schema")
    p_pol_show.add_argument("name", metavar="NAME")
    p_pol.set_defaults(fn=_cmd_policy)

    p_chk = sub.add_parser("check", help="run the simulator-aware static "
                                         "analysis pass")
    p_chk.add_argument("paths", nargs="*",
                       help="files/directories to scan "
                            "(default: src/repro)")
    p_chk.add_argument("--format", choices=("text", "json"),
                       default="text", help="report format")
    p_chk.add_argument("--baseline", default=".repro-check-baseline.json",
                       help="committed baseline of grandfathered findings")
    p_chk.add_argument("--rules", default="",
                       metavar="SPEC[,SPEC...]",
                       help="run only these rules, e.g. "
                            "'determinism,hot-path:slots=false'")
    p_chk.add_argument("--fix-baseline", action="store_true",
                       help="regenerate the baseline from current "
                            "findings (deterministic, sorted)")
    p_chk.add_argument("--list-rules", action="store_true",
                       help="list registered rules and exit")
    p_chk.set_defaults(fn=_cmd_check)

    p_tab = sub.add_parser("tables", help="print Tables 1 and 2")
    p_tab.set_defaults(fn=_cmd_tables)

    p_cat = sub.add_parser("catalog", help="list the benchmark suite")
    p_cat.set_defaults(fn=_cmd_catalog)

    p_an = sub.add_parser("analyze", help="characterize a workload trace")
    p_an.add_argument("benchmark", choices=ALL_ABBRS)
    p_an.add_argument("--scale", type=parse_scale, default=1.0,
                       metavar="S",
                       help="trace scale: float or preset "
                            "(smoke/small/medium/paper)")
    p_an.set_defaults(fn=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
