"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``run``        simulate one benchmark under one LLC policy
``compare``    one benchmark under all three policies, side by side
``figure``     regenerate a paper figure (2, 3, 7, 11, 12, 13, 14, 15, 16)
``tables``     print Tables 1 and 2
``catalog``    list the benchmark suite with its category parameters
``analyze``    characterize a generated workload trace
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.runner import (
    experiment_config,
    print_rows,
    run_benchmark,
)
from repro.workloads.analysis import characterize, verify_category
from repro.workloads.catalog import ALL_ABBRS, BENCHMARKS, build

_FIGURES = {
    "2": "repro.experiments.fig02_shared_vs_private",
    "3": "repro.experiments.fig03_locality",
    "7": "repro.experiments.fig07_noc_design_space",
    "11": "repro.experiments.fig11_adaptive_performance",
    "12": "repro.experiments.fig12_response_rate",
    "13": "repro.experiments.fig13_miss_rate",
    "14": "repro.experiments.fig14_noc_energy",
    "15": "repro.experiments.fig15_multiprogram",
    "16": "repro.experiments.fig16_sensitivity",
}


def _cmd_run(args: argparse.Namespace) -> int:
    res = run_benchmark(args.benchmark, args.mode, scale=args.scale)
    print(f"{args.benchmark} [{args.mode}]: IPC {res.ipc:.2f} over "
          f"{res.cycles:.0f} cycles")
    print(f"  LLC: miss rate {res.llc_miss_rate:.3f}, response rate "
          f"{res.llc_response_rate:.2f} flits/cycle")
    print(f"  DRAM: {res.dram_reads} reads, {res.dram_writes} writes")
    if args.mode == "adaptive":
        print(f"  adaptive: {res.transitions} transitions, "
              f"{res.time_in_private / res.cycles:.0%} time private")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rows = []
    base = None
    for mode in ("shared", "private", "adaptive"):
        res = run_benchmark(args.benchmark, mode, scale=args.scale)
        base = base or res.ipc
        rows.append({"mode": mode, "ipc": res.ipc, "vs_shared": res.ipc / base,
                     "llc_miss": res.llc_miss_rate,
                     "resp_rate": res.llc_response_rate})
    print_rows(rows)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    import importlib

    module = importlib.import_module(_FIGURES[args.number])
    module.main(scale=args.scale)
    return 0


def _cmd_tables(_args: argparse.Namespace) -> int:
    from repro.experiments import tables

    tables.main()
    return 0


def _cmd_catalog(_args: argparse.Namespace) -> int:
    rows = []
    for abbr in ALL_ABBRS:
        s = BENCHMARKS[abbr]
        rows.append({"abbr": abbr, "name": s.name, "category": s.category,
                     "shared_mb": s.shared_mb, "kernels": s.num_kernels,
                     "shared_frac": s.shared_frac,
                     "instrs_per_access": s.instrs_per_access})
    print_rows(rows)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    workload = build(args.benchmark,
                     total_accesses=int(40_000 * args.scale))
    profile = characterize(workload)
    for field in ("name", "category", "total_accesses", "distinct_lines",
                  "footprint_mb", "write_fraction", "shared_line_fraction",
                  "shared_access_fraction", "max_sharers",
                  "accesses_per_line"):
        value = getattr(profile, field)
        if isinstance(value, float):
            value = f"{value:.4f}"
        print(f"  {field}: {value}")
    problems = verify_category(profile)
    if problems:
        print("category violations:")
        for p in problems:
            print(f"  ! {p}")
        return 1
    print("category checks: OK")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Adaptive memory-side last-level GPU caching (ISCA'19) "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate one benchmark")
    p_run.add_argument("benchmark", choices=ALL_ABBRS)
    p_run.add_argument("--mode", default="adaptive",
                       choices=["shared", "private", "adaptive"])
    p_run.add_argument("--scale", type=float, default=1.0)
    p_run.set_defaults(fn=_cmd_run)

    p_cmp = sub.add_parser("compare", help="all three LLC policies")
    p_cmp.add_argument("benchmark", choices=ALL_ABBRS)
    p_cmp.add_argument("--scale", type=float, default=1.0)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_fig = sub.add_parser("figure", help="regenerate a paper figure")
    p_fig.add_argument("number", choices=sorted(_FIGURES))
    p_fig.add_argument("--scale", type=float, default=1.0)
    p_fig.set_defaults(fn=_cmd_figure)

    p_tab = sub.add_parser("tables", help="print Tables 1 and 2")
    p_tab.set_defaults(fn=_cmd_tables)

    p_cat = sub.add_parser("catalog", help="list the benchmark suite")
    p_cat.set_defaults(fn=_cmd_catalog)

    p_an = sub.add_parser("analyze", help="characterize a workload trace")
    p_an.add_argument("benchmark", choices=ALL_ABBRS)
    p_an.add_argument("--scale", type=float, default=1.0)
    p_an.set_defaults(fn=_cmd_analyze)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
