"""Statistics primitives shared by all subsystems."""

from __future__ import annotations

from typing import Iterable, Optional


class Counter:
    """A named monotonically increasing counter with interval support.

    ``mark()`` snapshots the current value so profiling phases can read the
    delta accumulated during the phase (used by the adaptive controller)."""

    __slots__ = ("name", "value", "_mark")

    def __init__(self, name: str = ""):
        self.name = name
        self.value: float = 0.0
        self._mark: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        self.value += amount

    def mark(self) -> None:
        """Start a new measurement interval."""
        self._mark = self.value

    @property
    def since_mark(self) -> float:
        return self.value - self._mark

    def reset(self) -> None:
        self.value = 0.0
        self._mark = 0.0


class Histogram:
    """Bucketed histogram over explicit bucket upper bounds.

    ``bounds=[1, 2, 4, 8]`` yields buckets ``<=1, <=2, <=4, <=8, >8``.
    """

    def __init__(self, bounds: Iterable[float], name: str = ""):
        self.name = name
        self.bounds = sorted(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0

    def add(self, value: float, weight: int = 1) -> None:
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += weight
                break
        else:
            self.counts[-1] += weight
        self.total += weight

    def fraction(self, index: int) -> float:
        """Fraction of samples in bucket ``index`` (0 when empty)."""
        if self.total == 0:
            return 0.0
        return self.counts[index] / self.total

    def fractions(self) -> list[float]:
        return [self.fraction(i) for i in range(len(self.counts))]


class IntervalAccumulator:
    """Accumulates a time-weighted mean of a piecewise-constant signal.

    Used for averages like "responses per cycle" where the denominator is
    simulated time rather than sample count.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self.weighted_sum = 0.0
        self.elapsed = 0.0

    def add_span(self, value: float, span: float) -> None:
        if span < 0:
            raise ValueError("negative span")
        self.weighted_sum += value * span
        self.elapsed += span

    def mean(self) -> float:
        if self.elapsed == 0:
            return 0.0
        return self.weighted_sum / self.elapsed


class RateTracker:
    """Counts discrete happenings and reports them per cycle.

    The LLC response rate of Figure 12 is ``RateTracker`` output: flits
    supplied by all LLC slices divided by elapsed cycles.
    """

    __slots__ = ("name", "count", "_start")

    def __init__(self, name: str = "", start: float = 0.0):
        self.name = name
        self.count: float = 0.0
        self._start = start

    def add(self, amount: float = 1.0) -> None:
        self.count += amount

    def rate(self, now: float) -> float:
        span = now - self._start
        if span <= 0:
            return 0.0
        return self.count / span

    def restart(self, now: float) -> None:
        self.count = 0.0
        self._start = now


def harmonic_mean(values: Iterable[float]) -> float:
    """Harmonic mean, the paper's summary statistic (HM bars in Figs. 2/11).

    Returns 0.0 for an empty input; raises on non-positive entries since a
    harmonic mean of speedups is only defined for positive values.
    """
    vals = list(values)
    if not vals:
        return 0.0
    for v in vals:
        if v <= 0:
            raise ValueError(f"harmonic mean requires positive values, got {v}")
    return len(vals) / sum(1.0 / v for v in vals)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; used in sensitivity summaries."""
    vals = list(values)
    if not vals:
        return 0.0
    prod = 1.0
    for v in vals:
        if v <= 0:
            raise ValueError(f"geometric mean requires positive values, got {v}")
        prod *= v
    return prod ** (1.0 / len(vals))


def weighted_mean(values: Iterable[float], weights: Optional[Iterable[float]] = None) -> float:
    vals = list(values)
    if not vals:
        return 0.0
    if weights is None:
        return sum(vals) / len(vals)
    wts = list(weights)
    if len(wts) != len(vals):
        raise ValueError("values and weights must have equal length")
    total_w = sum(wts)
    if total_w == 0:
        return 0.0
    return sum(v * w for v, w in zip(vals, wts)) / total_w
