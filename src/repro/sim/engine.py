"""Event queue and simulation loop.

Time is measured in GPU core cycles as a float (servers can hand out
sub-cycle completion times when modelling fractional bandwidth), but events
fire in strictly nondecreasing time order, with FIFO ordering among events
scheduled for the same instant.

Hot-path design
---------------
The heap stores plain ``(time, seq, event, fn, arg)`` tuples, never
:class:`Event` objects, so every sift during push/pop compares floats and
ints at C speed instead of calling a Python ``__lt__`` (``seq`` is unique
per engine, so comparison never reaches the later elements).  Two scheduling
flavours share one FIFO sequence counter:

* :meth:`schedule` / :meth:`schedule_after` — allocate an :class:`Event`
  handle the caller can cancel (the adaptive controller bulk-cancels whole
  epochs of profiling callbacks).
* :meth:`schedule_call` / :meth:`schedule_after_call` — fire-and-forget
  ``fn(arg)`` with **no per-event allocation beyond the heap tuple**.  The
  request pipeline in :mod:`repro.gpu.system` schedules one of these per
  queue boundary, so an L1 miss costs zero closures and zero Event objects.

Continuation protocol
---------------------
A ``schedule_call`` callback may *return* a ``(time, fn, arg)`` triple
instead of calling :meth:`schedule_call` as its final action.  The engine
then assigns the next sequence number and swaps the continuation into the
heap slot the finished event occupied (``heapreplace``: one sift instead of
a pop + push).  This is safe because a firing callback can only schedule at
``time >= now`` with a strictly larger seq, so the entry being dispatched
remains the heap minimum while it runs — the loop peeks, dispatches, then
pops or replaces.  Crucially the continuation receives exactly the seq it
would have drawn from a trailing ``schedule_call``, so the two styles are
interchangeable without perturbing FIFO order; the fast-path execution tier
(:mod:`repro.gpu.fastpath`) relies on this to stay byte-identical with the
event tier while halving heap traffic.
"""

# repro: hot-path
from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class Event:
    """A cancellable scheduled callback.  Cancel by calling :meth:`cancel`.

    Only :meth:`Engine.schedule`/:meth:`Engine.schedule_after` allocate
    these; the fire-and-forget ``schedule_call`` path never does.
    """

    __slots__ = ("time", "seq", "fn", "cancelled", "fired", "_engine")

    def __init__(self, time: float, seq: int, fn: Callable[[], None],
                 engine: Optional["Engine"] = None):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False
        self.fired = False
        self._engine = engine

    def cancel(self) -> None:
        """Mark the event as dead; it will be skipped when popped.

        Cancelling an event that already fired is a harmless no-op (the
        adaptive controller bulk-cancels everything it ever scheduled)."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self.fired and self._engine is not None:
            self._engine._note_cancelled()


class Engine:
    """Discrete-event simulation engine: a time-ordered event heap.

    Every simulated component schedules callbacks on one shared engine;
    ``now`` is the single source of simulation time.  Cancelled events are
    skipped on pop and the heap self-compacts when they dominate, so bulk
    cancellation (the adaptive controller cancels whole epochs of
    profiling events) stays cheap.

    Attributes:
        now: current simulation time in GPU core cycles (float; servers
            hand out sub-cycle completion times).

    Usage::

        eng = Engine()
        eng.schedule(10.0, lambda: print("fired at", eng.now))
        eng.run(until=1000.0)
    """

    #: Compaction threshold: never compact below this many cancellations
    #: (tiny heaps rebuild too often to be worth it).
    COMPACT_MIN_CANCELLED = 64

    __slots__ = ("now", "_heap", "_seq", "_events_processed", "_cancelled")

    def __init__(self) -> None:
        self.now: float = 0.0
        # Heap entries: (time, seq, Event-or-None, fn-or-None, arg).
        # Exactly one of (entry[2]) / (entry[3]) is set.
        self._heap: list[tuple] = []
        self._seq = 0
        self._events_processed = 0
        self._cancelled = 0  # dead events still sitting in the heap

    # ------------------------------------------------------------ schedule
    def schedule(self, time: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run at absolute ``time``.

        Args:
            time: absolute firing time; must be >= ``now``.
            fn: zero-argument callback.

        Returns:
            The queued :class:`Event` (keep it to :meth:`Event.cancel`).

        Raises:
            ValueError: if ``time`` lies in the past.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, engine=self)
        heapq.heappush(self._heap, (time, seq, ev, None, None))
        return ev

    def schedule_call(self, time: float, fn: Callable[[Any], None],
                      arg: Any) -> None:
        """Schedule ``fn(arg)`` at absolute ``time`` — the zero-allocation
        fast path (no :class:`Event` handle, so no cancellation).

        FIFO ordering with :meth:`schedule` is preserved: both flavours draw
        from the same sequence counter.

        Args:
            time: absolute firing time; must be >= ``now``.
            fn: one-argument callback (typically a bound stage method).
            arg: payload handed to ``fn`` (typically a pipeline request).

        Raises:
            ValueError: if ``time`` lies in the past.
        """
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, None, fn, arg))

    def schedule_batch(self, items) -> None:
        """Schedule many ``(time, fn, arg)`` triples with consecutive FIFO
        sequence numbers — one bulk push instead of N :meth:`schedule_call`
        calls (kernel launch wakes every SM through this).

        Args:
            items: iterable of ``(time, fn, arg)`` triples; every ``time``
                must be >= ``now``.

        Raises:
            ValueError: if any ``time`` lies in the past (items before the
                offender are already queued).
        """
        now = self.now
        seq = self._seq
        heap = self._heap
        push = heapq.heappush
        for time, fn, arg in items:
            if time < now:
                self._seq = seq
                raise ValueError(
                    f"cannot schedule in the past ({time} < {now})")
            push(heap, (time, seq, None, fn, arg))
            seq += 1
        self._seq = seq

    def schedule_after(self, delay: float, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay`` cycles from now.

        Args:
            delay: non-negative offset from ``now``.
            fn: zero-argument callback.

        Returns:
            The queued :class:`Event`.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.schedule(self.now + delay, fn)

    def schedule_after_call(self, delay: float, fn: Callable[[Any], None],
                            arg: Any) -> None:
        """Relative-delay variant of :meth:`schedule_call`.

        Raises:
            ValueError: if ``delay`` is negative.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_call(self.now + delay, fn, arg)

    # -------------------------------------------------------- cancellation
    def _note_cancelled(self) -> None:
        """A queued event was cancelled.  When dead events dominate the heap
        (long adaptive runs cancel whole epochs of profiling events), compact
        it so they don't accumulate for the rest of the run."""
        self._cancelled += 1
        if (self._cancelled >= self.COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._heap)):
            self._compact()

    # repro: cold
    def _compact(self) -> None:
        """Drop cancelled events and restore the heap invariant.

        In place: :meth:`run` holds a local reference to the heap list while
        event callbacks (which may cancel events) are executing.
        """
        live = [entry for entry in self._heap
                if entry[2] is None or not entry[2].cancelled]
        heapq.heapify(live)
        self._heap[:] = live
        self._cancelled = 0

    # ----------------------------------------------------------------- run
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Process events until the queue drains or a limit is hit.

        Args:
            until: stop (and advance ``now`` to this horizon) before firing
                any event scheduled later than it.
            max_events: fire at most this many events in this call.

        ``self.now`` advances to the time of the last processed event (or
        ``until`` when the horizon cuts first).
        """
        if until is None and max_events is None:
            self._run_fast()
            return
        heap = self._heap
        pop = heapq.heappop
        processed = 0
        while heap:
            entry = heap[0]
            ev = entry[2]
            if ev is not None and ev.cancelled:
                pop(heap)
                self._cancelled -= 1
                continue
            if until is not None and entry[0] > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                break
            pop(heap)
            self.now = entry[0]
            if ev is not None:
                ev.fired = True
                ev.fn()
            else:
                res = entry[3](entry[4])
                if res is not None:
                    self.schedule_call(res[0], res[1], res[2])
            processed += 1
        else:
            if until is not None and until > self.now:
                self.now = until
        self._events_processed += processed

    def _run_fast(self) -> None:
        """Drain the whole queue with no horizon/budget checks per pop.

        The common case — :meth:`repro.gpu.system.GPUSystem.run` without a
        cycle cap — pays neither the ``until``/``max_events`` comparisons
        nor a heap peek per event.
        """
        heap = self._heap
        pop = heapq.heappop
        replace = heapq.heapreplace
        processed = 0
        while heap:
            # Peek-run-replace: the entry being dispatched stays the heap
            # minimum while its callback runs (anything it schedules lands
            # at time >= now with a larger seq), so we defer the pop and —
            # when the callback returns a (time, fn, arg) continuation —
            # swap it into the same slot with one sift.
            time, _seq, ev, fn, arg = heap[0]
            if ev is None:
                self.now = time
                res = fn(arg)
                if res is None:
                    pop(heap)
                else:
                    seq = self._seq
                    self._seq = seq + 1
                    replace(heap, (res[0], seq, None, res[1], res[2]))
                processed += 1
            elif not ev.cancelled:
                # Event handles can be cancelled (even from their own
                # callback, which may also trigger a compaction), so this
                # branch pops before dispatching, as a pre-continuation
                # engine would.
                pop(heap)
                ev.fired = True
                self.now = time
                ev.fn()
                processed += 1
            else:
                pop(heap)
                self._cancelled -= 1
        self._events_processed += processed

    @property
    def pending(self) -> int:
        """Number of live events still queued (O(1): the engine tracks how
        many cancelled events are still parked in the heap)."""
        return len(self._heap) - self._cancelled

    @property
    def events_processed(self) -> int:
        """Total events fired over the engine's lifetime (all runs)."""
        return self._events_processed

    def drained(self) -> bool:
        """True when no live events remain."""
        return self.pending == 0

    # ------------------------------------------------------- raw insertion
    def push_entry(self, entry: tuple) -> None:
        """Insert a fully-formed ``(time, seq, event, fn, arg)`` heap entry.

        Execution tiers that draw sequence numbers manually (``engine._seq``)
        use this instead of touching ``_heap`` directly, keeping the queue
        representation an engine-private detail.  The caller guarantees
        ``entry[0] >= now`` and a fresh ``seq``.
        """
        heapq.heappush(self._heap, entry)
