"""Bandwidth servers: the queueing primitive of the simulator.

A :class:`BandwidthServer` models a pipelined hardware resource that can
accept at most one unit of work per ``1/rate`` cycles (e.g. a router output
port forwarding one flit per cycle, an LLC data port supplying one flit per
cycle, a DRAM data bus moving ``channel_bytes`` per cycle).  Work submitted
while the resource is busy queues in FIFO order; the server returns the
*completion time* so callers can thread a packet through a chain of servers
without scheduling intermediate events.

This "enqueue returns completion time" style is the core trick that makes an
80-SM GPU simulatable in pure Python: one heap event per request round trip,
O(1) arithmetic per hop.
"""

from __future__ import annotations


class BandwidthServer:
    """FIFO resource with a service time per job and optional pipelining.

    ``occupancy(job)`` cycles of the resource are consumed per job; the
    *latency* through the resource can be larger than its occupancy (a
    pipelined router holds a flit slot for 1 cycle but takes 4 cycles of
    pipeline delay), which callers add separately.
    """

    __slots__ = ("name", "busy_until", "busy_cycles", "jobs", "_window_start",
                 "_window_busy")

    def __init__(self, name: str = ""):
        self.name = name
        self.busy_until: float = 0.0
        self.busy_cycles: float = 0.0
        self.jobs: int = 0
        self._window_start: float = 0.0
        self._window_busy: float = 0.0

    def enqueue(self, now: float, occupancy: float) -> float:
        """Submit a job arriving at ``now`` that occupies the resource for
        ``occupancy`` cycles.  Returns the time the job *finishes* occupying
        the resource (its exit time, excluding any extra pipeline latency)."""
        if occupancy < 0:
            raise ValueError(f"negative occupancy {occupancy}")
        start = self.busy_until if self.busy_until > now else now
        done = start + occupancy
        self.busy_until = done
        self.busy_cycles += occupancy
        self._window_busy += occupancy
        self.jobs += 1
        return done

    def queue_delay(self, now: float) -> float:
        """Cycles a job arriving now would wait before starting service."""
        return max(0.0, self.busy_until - now)

    # -------------------------------------------------------------- stats
    def utilization(self, now: float) -> float:
        """Lifetime utilization in [0, 1] (busy cycles / elapsed cycles)."""
        if now <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / now)

    def window_utilization(self, now: float) -> float:
        """Utilization since the last :meth:`reset_window` call."""
        span = now - self._window_start
        if span <= 0:
            return 0.0
        return min(1.0, self._window_busy / span)

    def reset_window(self, now: float) -> None:
        self._window_start = now
        self._window_busy = 0.0

    def reset(self) -> None:
        """Clear all state (used when power-gating then re-enabling)."""
        self.busy_until = 0.0
        self.busy_cycles = 0.0
        self.jobs = 0
        self._window_start = 0.0
        self._window_busy = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BandwidthServer({self.name!r}, busy_until={self.busy_until:.1f}, jobs={self.jobs})"


class LatencyLink:
    """A fixed-latency, bandwidth-limited wire.

    Combines a :class:`BandwidthServer` (serialization at the channel width)
    with a propagation latency.  ``traverse`` returns the time the *tail* of
    the message exits the far end.
    """

    __slots__ = ("server", "latency")

    def __init__(self, name: str, latency: float):
        self.server = BandwidthServer(name)
        self.latency = latency

    def traverse(self, now: float, flits: int) -> float:
        """Send ``flits`` flits at ``now``; returns arrival time of the tail
        flit at the downstream component."""
        exit_time = self.server.enqueue(now, float(flits))
        return exit_time + self.latency

    @property
    def jobs(self) -> int:
        return self.server.jobs
