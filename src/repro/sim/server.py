"""Bandwidth servers: the queueing primitive of the simulator.

A :class:`BandwidthServer` models a pipelined hardware resource that can
accept at most one unit of work per ``1/rate`` cycles (e.g. a router output
port forwarding one flit per cycle, an LLC data port supplying one flit per
cycle, a DRAM data bus moving ``channel_bytes`` per cycle).  Work submitted
while the resource is busy queues in FIFO order; the server returns the
*completion time* so callers can thread a packet through a chain of servers
without scheduling intermediate events.

This "enqueue returns completion time" style is the core trick that makes an
80-SM GPU simulatable in pure Python: one heap event per request round trip,
O(1) arithmetic per hop.  The fast-path execution tier
(:mod:`repro.gpu.fastpath`) leans on it even harder, inlining the
``enqueue`` arithmetic into straight-line stage handlers — which is why the
method body below is kept branch-minimal: one validity check, three state
updates, no window bookkeeping (windows are derived lazily from
``busy_cycles`` snapshots instead of being accumulated per job).
"""

# repro: hot-path
from __future__ import annotations


class BandwidthServer:
    """FIFO resource with a service time per job and optional pipelining.

    ``occupancy(job)`` cycles of the resource are consumed per job; the
    *latency* through the resource can be larger than its occupancy (a
    pipelined router holds a flit slot for 1 cycle but takes 4 cycles of
    pipeline delay), which callers add separately.
    """

    __slots__ = ("name", "busy_until", "busy_cycles", "jobs", "_window_start",
                 "_window_mark")

    def __init__(self, name: str = ""):
        self.name = name
        self.busy_until: float = 0.0
        self.busy_cycles: float = 0.0
        self.jobs: int = 0
        self._window_start: float = 0.0
        #: ``busy_cycles`` snapshot at the last :meth:`reset_window`; the
        #: window's busy time is derived as ``busy_cycles - _window_mark``
        #: so the hot enqueue path never maintains a second accumulator.
        self._window_mark: float = 0.0

    def enqueue(self, now: float, occupancy: float) -> float:
        """Submit a job arriving at ``now`` that occupies the resource for
        ``occupancy`` cycles.  Returns the time the job *finishes* occupying
        the resource (its exit time, excluding any extra pipeline latency).

        This is the hottest method in the simulator (~a quarter-million
        calls per medium bench run), so it carries exactly one guard branch
        and no window-stat updates; anything slow lives behind the guard.
        """
        if occupancy < 0.0:
            raise ValueError(f"negative occupancy {occupancy}")
        busy = self.busy_until
        done = (busy if busy > now else now) + occupancy
        self.busy_until = done
        self.busy_cycles += occupancy
        self.jobs += 1
        return done

    def peek(self, now: float, occupancy: float) -> float:
        """Completion time :meth:`enqueue` *would* return, without claiming
        the resource.  The fast-path tier uses this to price a round trip
        before committing to it."""
        busy = self.busy_until
        return (busy if busy > now else now) + occupancy

    def queue_delay(self, now: float) -> float:
        """Cycles a job arriving now would wait before starting service."""
        return max(0.0, self.busy_until - now)

    # -------------------------------------------------------------- stats
    def utilization(self, now: float) -> float:
        """Lifetime utilization in [0, 1] (busy cycles / elapsed cycles)."""
        if now <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / now)

    def window_utilization(self, now: float) -> float:
        """Utilization since the last :meth:`reset_window` call."""
        span = now - self._window_start
        if span <= 0:
            return 0.0
        return min(1.0, (self.busy_cycles - self._window_mark) / span)

    def reset_window(self, now: float) -> None:
        self._window_start = now
        self._window_mark = self.busy_cycles

    def reset(self) -> None:
        """Clear all state (used when power-gating then re-enabling)."""
        self.busy_until = 0.0
        self.busy_cycles = 0.0
        self.jobs = 0
        self._window_start = 0.0
        self._window_mark = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BandwidthServer({self.name!r}, busy_until={self.busy_until:.1f}, jobs={self.jobs})"


def enqueue_chain(servers, now: float, occupancies, latencies) -> float:
    """Thread one job through a chain of servers in closed form.

    ``servers``, ``occupancies`` and ``latencies`` are parallel sequences:
    the job enters server *i* when it exits server *i-1* plus that hop's
    extra pipeline ``latencies[i-1]``.  Returns the tail exit time after the
    last hop's latency — the whole multi-hop traversal as one arithmetic
    expression, no events.  This is the reference semantics the fast-path
    tier's inlined stage handlers reproduce (and the generic helper for
    chains built at runtime, e.g. in tests and ad-hoc tools).
    """
    t = now
    for server, occupancy, latency in zip(servers, occupancies, latencies):
        t = server.enqueue(t, occupancy) + latency
    return t


class LatencyLink:
    """A fixed-latency, bandwidth-limited wire.

    Combines a :class:`BandwidthServer` (serialization at the channel width)
    with a propagation latency.  ``traverse`` returns the time the *tail* of
    the message exits the far end.
    """

    __slots__ = ("server", "latency")

    def __init__(self, name: str, latency: float):
        self.server = BandwidthServer(name)
        self.latency = latency

    def traverse(self, now: float, flits: int) -> float:
        """Send ``flits`` flits at ``now``; returns arrival time of the tail
        flit at the downstream component."""
        exit_time = self.server.enqueue(now, float(flits))
        return exit_time + self.latency

    @property
    def jobs(self) -> int:
        return self.server.jobs
