"""Discrete-event simulation kernel.

The simulator is *event-driven and queueing-accurate* rather than
cycle-ticked: every shared hardware resource (router output port, link, LLC
tag/data port, DRAM bank, DRAM data bus) is a :class:`~repro.sim.server.BandwidthServer`
that serializes work in FIFO order, and the only heap events are SM wakeups
and response deliveries.  This keeps pure-Python simulation of an 80-SM GPU
tractable while preserving the queueing behaviour the paper's phenomenon
depends on.
"""

from repro.sim.engine import Engine, Event
from repro.sim.server import BandwidthServer, LatencyLink
from repro.sim.stats import Counter, Histogram, IntervalAccumulator, RateTracker

__all__ = [
    "Engine",
    "Event",
    "BandwidthServer",
    "LatencyLink",
    "Counter",
    "Histogram",
    "IntervalAccumulator",
    "RateTracker",
]
