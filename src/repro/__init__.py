"""repro — Adaptive Memory-Side Last-Level GPU Caching (ISCA 2019).

A from-scratch reproduction of Zhao et al.'s adaptive LLC: an event-driven
GPU memory-hierarchy simulator, shared/private/adaptive memory-side LLC
organizations, the ATD + LSP online performance model with transition Rules
#1-#3, three crossbar NoC models with DSENT-like power/area estimation, and
one experiment driver per paper table and figure.

Public entry points
-------------------
:class:`repro.config.GPUConfig`
    Table 1 baseline; override fields with :meth:`~repro.config.GPUConfig.replace`.
:func:`repro.workloads.catalog.build`
    Generate one of the 17 Table 2 benchmarks.
:class:`repro.gpu.system.GPUSystem`
    Assemble and run a simulation under ``"shared"``, ``"private"`` or
    ``"adaptive"`` LLC policy.
:mod:`repro.experiments`
    Figure/table drivers (also exposed via ``python -m repro``).
"""

from repro.config import AdaptiveConfig, DRAMTiming, GPUConfig, NoCConfig
from repro.gpu.system import GPUSystem, RunResult

__version__ = "0.1.0"

__all__ = [
    "AdaptiveConfig",
    "DRAMTiming",
    "GPUConfig",
    "NoCConfig",
    "GPUSystem",
    "RunResult",
    "__version__",
]
