"""First-class run scenarios: programs with their own LLC policies.

The historical run surface — ``GPUSystem(cfg, workload, policy=...)`` —
models every simulation as "one workload under one global LLC policy",
which cannot express the paper's sharpest multiprogram case (Figure 15):
program A running ``static-private`` while co-runner B runs
``paper-adaptive``.  The Scenario API makes the *program* the unit of
declaration instead:

* :class:`ProgramSpec` — one co-running application: its workload plus the
  LLC policy (and parameters) that governs *its* clusters' slices;
* :class:`Scenario` — an ordered set of programs sharing the GPU.  Two
  programs co-execute under the Figure 9 placement by default; N-tenant
  consolidation runs attach a placement spec, per-tenant admission times
  and request-latency tracking (see :mod:`repro.consolidate`).

``GPUSystem`` accepts a :class:`Scenario` wherever it accepted a workload;
the old ``policy=``/``policy_params=`` kwargs remain as thin adapters that
build a one-policy scenario internally, so legacy runs (and their golden
captures) stay byte-identical.

The CLI mix grammar lives here too::

    GEMM:paper-adaptive+SN:static-private
    GEMM:hysteresis:dwell=3,interval=800+SN

Each ``+``-separated entry is ``BENCHMARK[:POLICY[:key=value,...]]``; an
entry without a policy inherits the run's default.  :func:`parse_mix`
returns ``(benchmark, PolicyConfig | None)`` pairs; benchmark validation is
the caller's job (the catalog is not imported here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.config import PolicyConfig
from repro.policy import LLCPolicy
from repro.workloads.trace import Workload


@dataclass
class ProgramSpec:
    """One co-running application and the LLC policy that governs it.

    Attributes:
        workload: the program's :class:`~repro.workloads.trace.Workload`.
            Co-running programs must occupy disjoint address spaces (the
            generator's ``address_offset`` / :func:`~repro.workloads.
            multiprogram.make_pair` handle this).
        policy: the program's LLC policy — a registered name or alias, a
            :class:`~repro.config.PolicyConfig`, or a ready
            :class:`~repro.policy.LLCPolicy` instance.  ``None`` means the
            scenario-level default (``"shared"``, the historical default).
        policy_params: parameter overrides for a name/config ``policy``
            (rejected alongside an instance, which carries its own).
    """

    workload: Workload
    policy: Union[str, PolicyConfig, LLCPolicy, None] = None
    policy_params: Optional[dict[str, object]] = None

    def policy_spec(self) -> str:
        """Canonical ``NAME[:k=v,...]`` rendering of the program's policy
        (instances render as their registered ``NAME``)."""
        if isinstance(self.policy, LLCPolicy):
            return type(self.policy).NAME
        if isinstance(self.policy, PolicyConfig):
            return self.policy.spec()
        name = self.policy if self.policy is not None else "shared"
        return PolicyConfig.of(name, self.policy_params).spec()


@dataclass
class Scenario:
    """An ordered set of programs sharing the GPU, each with its policy.

    One entry is a single-program run; N entries co-execute under the
    generalized Figure 9 cluster-split placement (every cluster divided
    between the tenants) unless ``placement`` names another registered
    SM-placement policy.  The consolidation fields all default to the
    legacy closed-system shape so existing scenarios — and their golden
    captures — stay byte-identical:

    Attributes:
        placement: ``NAME[:k=v,...]`` spec of a registered placement from
            :mod:`repro.consolidate.placement` (``None`` = cluster-split).
        arrival_times: per-tenant admission times in core cycles
            (nondecreasing, first entry 0.0); ``None`` means everyone is
            present at time zero.  Tenants admitted later launch via an
            admission event that re-derives LLC routing.
        track_latency: record per-request round-trip latencies per tenant
            and report p50/p95/p99 in the program stats.  Forces the
            event execution tier (accelerated tiers decline).
    """

    programs: list[ProgramSpec] = field(default_factory=list)
    name: Optional[str] = None
    placement: Optional[str] = None
    arrival_times: Optional[list[float]] = None
    track_latency: bool = False

    def __post_init__(self) -> None:
        if not self.programs:
            raise ValueError("a Scenario needs at least one ProgramSpec")
        if self.name is None:
            self.name = "+".join(p.workload.name for p in self.programs)
        times = self.arrival_times
        if times is not None:
            if len(times) != len(self.programs):
                raise ValueError(
                    f"{len(times)} arrival times for "
                    f"{len(self.programs)} programs")
            if times and times[0] != 0.0:
                raise ValueError("the first tenant must arrive at 0.0")
            if any(b < a for a, b in zip(times, times[1:])):
                raise ValueError("arrival times must be nondecreasing")

    # ------------------------------------------------------- constructors
    @staticmethod
    def single(workload: Workload,
               policy: Union[str, PolicyConfig, LLCPolicy, None] = None,
               policy_params: Optional[dict[str, object]] = None
               ) -> "Scenario":
        """A one-program scenario (the legacy run shape)."""
        return Scenario([ProgramSpec(workload, policy, policy_params)])

    @staticmethod
    def mix(*programs: ProgramSpec, name: Optional[str] = None) -> "Scenario":
        """A multi-program scenario from explicit :class:`ProgramSpec`\\ s."""
        return Scenario(list(programs), name=name)

    # ------------------------------------------------------------ queries
    def __len__(self) -> int:
        return len(self.programs)

    def describe(self) -> str:
        """Human-readable ``wl:policy+wl:policy`` tag for logs/results."""
        return "+".join(f"{p.workload.name}:{p.policy_spec()}"
                        for p in self.programs)


def parse_mix_entry(text: str) -> tuple[str, Optional[PolicyConfig]]:
    """Parse one mix entry: ``BENCHMARK[:POLICY[:key=value,...]]``.

    Returns ``(benchmark, policy_config_or_None)``.  The policy spec, when
    present, parses through :meth:`PolicyConfig.from_spec` — same grammar,
    same errors as ``--policy``.
    """
    bench, sep, policy_text = text.partition(":")
    bench = bench.strip()
    if not bench:
        raise ValueError(f"mix entry {text!r} has no benchmark")
    if not sep or not policy_text.strip():
        return bench, None
    return bench, PolicyConfig.from_spec(policy_text.strip())


def parse_mix(text: str) -> list[tuple[str, Optional[PolicyConfig]]]:
    """Parse the full mix grammar: ``ENTRY+ENTRY``.

    ``+`` separates programs, so policy parameter *values* inside a mix
    must avoid it (write ``1000.0``, not ``1e+3``).
    """
    entries = [tok.strip() for tok in text.split("+")]
    if any(not tok for tok in entries):
        raise ValueError(f"mix {text!r} has an empty program entry")
    return [parse_mix_entry(tok) for tok in entries]


def format_mix_entry(bench: str,
                     policy: Optional[PolicyConfig] = None) -> str:
    """Render one mix entry canonically: the inverse of
    :func:`parse_mix_entry`.

    A ``None`` policy renders as the bare benchmark (the entry inherits
    the run's default), matching what :func:`parse_mix_entry` returns
    for it.  The rendered text must survive a ``+``-split re-parse, so
    policy values containing ``+`` (scientific notation like ``1e+3``)
    are rejected here, symmetrically with the parser's documented
    restriction.
    """
    if not bench or not bench.strip():
        raise ValueError("mix entry has no benchmark")
    if policy is None:
        return bench
    spec = policy.spec()
    if "+" in spec:
        raise ValueError(
            f"policy spec {spec!r} contains '+', which the mix grammar "
            f"reserves as the program separator (spell values without "
            f"scientific notation)")
    return f"{bench}:{spec}"


def format_mix(entries: Iterable[tuple[str, Optional[PolicyConfig]]]
               ) -> str:
    """Render ``(benchmark, PolicyConfig | None)`` pairs as mix text.

    The canonical inverse of :func:`parse_mix`:
    ``parse_mix(format_mix(entries)) == entries`` for every well-formed
    entry list (parameter ordering is normalized by
    :class:`~repro.config.PolicyConfig` itself, so a round trip through
    the text form is idempotent).  This *is* the service wire format for
    mixes, so both directions live next to each other.
    """
    entries = list(entries)
    if not entries:
        raise ValueError("a mix needs at least one program entry")
    return "+".join(format_mix_entry(bench, policy)
                    for bench, policy in entries)
